//! A Prim-style sequential-growth baseline in the sleeping model.
//!
//! One designated leader fragment repeatedly finds its minimum outgoing
//! edge and absorbs the far endpoint; every other node stays a singleton
//! fragment until it is absorbed. The algorithm produces the MST (Prim's
//! correctness) and it *does* sleep between blocks — yet its awake
//! complexity is **Θ(n)**: the leader fragment's nodes are awake `O(1)`
//! rounds in each of the `n − 1` phases, and singletons must wake for the
//! two `Transmit-Adjacent` blocks of every phase to answer the frontier.
//!
//! That is the pedagogical counterpoint to `Randomized-MST`: access to a
//! sleep state alone does not give small awake complexity — the paper's
//! *parallel star-merging* is what collapses `n − 1` sequential absorptions
//! into `O(log n)` phases.
//!
//! Phase layout (4 blocks): `FragIdExchange` (side), `UpcastMoe`,
//! `BcastMoe` (+DONE), `MergeInfo` (side, leader's endpoint sends the
//! attach notice; the absorbed singleton adopts directly — no sweeps are
//! needed because the absorbed fragment is always a single node).

use graphlib::Port;
use netsim::{Envelope, NextWake, NodeCtx, Outbox, Protocol, Round};

use crate::fragment::{FragmentCore, Step};
use crate::ldt::LdtView;
use crate::msg::MstMsg;
use crate::schedule::ts_offsets;
use crate::timeline::{Position, Timeline};

const FRAG_ID_EXCHANGE: u64 = 0;
const UPCAST_MOE: u64 = 1;
const BCAST_MOE: u64 = 2;
const MERGE_INFO: u64 = 3;
/// Blocks per phase of the Prim baseline.
pub const BLOCKS_PER_PHASE: u64 = 4;

/// The phase label of `round` in `Prim-MST`'s four-block schedule
/// (fragment-id exchange, MOE upcast/broadcast within the leader
/// fragment, frontier attach). Backs the observability plane's
/// [`phase_spans`](netsim::Metrics::phase_spans); total — never panics.
pub fn phase_label(n: usize, round: Round) -> &'static str {
    if round == 0 {
        return "init";
    }
    match Timeline::new(n, BLOCKS_PER_PHASE).position(round).block {
        FRAG_ID_EXCHANGE => "fragment-id-exchange",
        UPCAST_MOE => "upcast-moe",
        BCAST_MOE => "bcast-moe",
        MERGE_INFO => "merge-info",
        _ => "out-of-schedule",
    }
}

/// Per-node state of the Prim-style baseline. Implements
/// [`netsim::Protocol`].
#[derive(Debug, Clone)]
pub struct PrimMst {
    timeline: Timeline,
    core: FragmentCore,
    /// External id of the designated leader (fragment that grows).
    leader: u64,
    agg_moe: Option<u64>,
    frag_moe: Option<u64>,
    moe_port: Option<Port>,
    done: bool,
    phases: u64,
    next_step: Option<(u64, u64, u64, Step)>,
}

impl PrimMst {
    /// Creates the node state; the node whose external id equals
    /// `leader` roots the growing fragment (with the default `[1, n]` id
    /// assignment, pass `1`).
    pub fn new(ctx: &NodeCtx, leader: u64) -> Self {
        PrimMst {
            timeline: Timeline::new(ctx.n, BLOCKS_PER_PHASE),
            core: FragmentCore::new(ctx),
            leader,
            agg_moe: None,
            frag_moe: None,
            moe_port: None,
            done: false,
            phases: 0,
            next_step: None,
        }
    }

    /// `true` once the node has learned the MST is complete.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Completed absorption phases.
    pub fn phases(&self) -> u64 {
        self.phases
    }

    /// Output: `true` at index `p` iff the edge behind port `p` is an MST
    /// edge.
    pub fn mst_ports(&self) -> &[bool] {
        &self.core.mst_ports
    }

    /// LDT snapshot for invariant checking.
    pub fn ldt_view(&self) -> LdtView {
        self.core.ldt_view()
    }

    fn in_leader_fragment(&self) -> bool {
        self.core.frag == self.leader
    }

    fn steps_for(&self, block: u64, degree: usize) -> Vec<(u64, Step)> {
        let o = ts_offsets(self.timeline.n(), self.core.level);
        let root = self.core.is_root();
        let kids = self.core.has_children();
        let mut steps = Vec::with_capacity(2);
        match block {
            FRAG_ID_EXCHANGE | MERGE_INFO if degree > 0 => {
                steps.push((o.side, Step::Side));
            }
            UPCAST_MOE if self.in_leader_fragment() => {
                if kids {
                    steps.push((o.up_receive, Step::UpReceive));
                }
                if let Some(up) = o.up_send {
                    steps.push((up, Step::UpSend));
                }
            }
            BCAST_MOE if self.in_leader_fragment() => {
                if let Some(dr) = o.down_receive {
                    steps.push((dr, Step::DownReceive));
                }
                if kids || root {
                    steps.push((o.down_send, Step::DownSend));
                }
            }
            _ => {}
        }
        // lint:allow(determinism) -- step offsets within a block are pairwise distinct by Timeline construction
        steps.sort_unstable_by_key(|&(off, _)| off);
        steps
    }

    fn advance(
        &mut self,
        mut phase: u64,
        mut block: u64,
        mut after: Option<u64>,
        degree: usize,
    ) -> NextWake {
        loop {
            let next = self
                .steps_for(block, degree)
                .into_iter()
                .find(|&(off, _)| after.is_none_or(|a| off > a));
            if let Some((offset, step)) = next {
                self.next_step = Some((phase, block, offset, step));
                return NextWake::At(self.timeline.round(Position {
                    phase,
                    block,
                    offset,
                }));
            }
            after = None;
            block += 1;
            if block == BLOCKS_PER_PHASE {
                block = 0;
                phase += 1;
                self.core.apply_merge();
                self.core.clear_phase_scratch();
                self.agg_moe = None;
                self.frag_moe = None;
                self.moe_port = None;
                self.phases += 1;
            }
        }
    }
}

impl Protocol for PrimMst {
    type Msg = MstMsg;

    fn init(&mut self, ctx: &NodeCtx) -> NextWake {
        self.advance(0, 0, None, ctx.degree())
    }

    fn send(&mut self, ctx: &NodeCtx, _round: Round, outbox: &mut Outbox<MstMsg>) {
        let (_, block, _, step) = self.next_step.expect("send only at planned wakes");
        match (block, step) {
            (FRAG_ID_EXCHANGE, Step::Side) => {
                for p in ctx.ports() {
                    outbox.push(
                        p,
                        MstMsg::FragInfo {
                            frag: self.core.frag,
                            level: self.core.level,
                            attach: false,
                        },
                    );
                }
            }
            (UPCAST_MOE, Step::UpSend) => {
                let local = self.core.local_moe(ctx).map(|(w, _)| w);
                let agg = match (self.agg_moe, local) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                outbox.push(
                    self.core.parent.expect("UpSend implies a parent"),
                    MstMsg::UpMoe(agg),
                );
            }
            (BCAST_MOE, Step::DownSend) => {
                if self.core.is_root() {
                    let local = self.core.local_moe(ctx);
                    self.frag_moe = match (self.agg_moe, local.map(|(w, _)| w)) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                    match self.frag_moe {
                        None => self.done = true,
                        Some(w) => {
                            if local.map(|(lw, _)| lw) == Some(w) {
                                self.moe_port = local.map(|(_, p)| p);
                            }
                        }
                    }
                }
                for &p in &self.core.children {
                    outbox.push(p, MstMsg::DownMoe(self.frag_moe));
                }
            }
            (MERGE_INFO, Step::Side) => {
                for p in ctx.ports() {
                    let attach = self.in_leader_fragment() && self.moe_port == Some(p);
                    outbox.push(
                        p,
                        MstMsg::FragInfo {
                            frag: self.core.frag,
                            level: self.core.level,
                            attach,
                        },
                    );
                }
            }
            _ => {}
        }
    }

    fn deliver(&mut self, ctx: &NodeCtx, _round: Round, inbox: &[Envelope<MstMsg>]) -> NextWake {
        let (phase, block, offset, step) = self
            .next_step
            .take()
            .expect("deliver only at planned wakes");
        match (block, step) {
            (FRAG_ID_EXCHANGE, Step::Side) => {
                for env in inbox {
                    if let MstMsg::FragInfo { frag, level, .. } = env.msg {
                        self.core.nbr[env.port.index()] = Some((frag, level));
                    }
                }
            }
            (UPCAST_MOE, Step::UpReceive) => {
                for env in inbox {
                    if let MstMsg::UpMoe(w) = env.msg {
                        self.agg_moe = match (self.agg_moe, w) {
                            (Some(a), Some(b)) => Some(a.min(b)),
                            (a, b) => a.or(b),
                        };
                    }
                }
            }
            (BCAST_MOE, Step::DownReceive) => {
                for env in inbox {
                    if let MstMsg::DownMoe(moe) = env.msg {
                        self.frag_moe = moe;
                        match moe {
                            None => self.done = true,
                            Some(w) => {
                                if let Some((lw, lp)) = self.core.local_moe(ctx) {
                                    if lw == w {
                                        self.moe_port = Some(lp);
                                    }
                                }
                            }
                        }
                    }
                }
                if self.done && !self.core.has_children() {
                    return NextWake::Halt;
                }
            }
            (BCAST_MOE, Step::DownSend) if self.done => {
                return NextWake::Halt;
            }
            (MERGE_INFO, Step::Side) => {
                for env in inbox {
                    if let MstMsg::FragInfo {
                        frag,
                        level,
                        attach,
                    } = env.msg
                    {
                        if attach {
                            // We are the absorbed singleton: adopt directly.
                            debug_assert!(!self.core.has_children());
                            self.core.new_vals = Some((level + 1, frag));
                            self.core.new_parent = Some(env.port);
                            self.core.mst_ports[env.port.index()] = true;
                        }
                        if self.in_leader_fragment() && self.moe_port == Some(env.port) {
                            // We are the frontier endpoint: gain a child.
                            self.core.mst_ports[env.port.index()] = true;
                            self.core.pending_children.push(env.port);
                        }
                    }
                }
            }
            _ => {}
        }
        self.advance(phase, block, Some(offset), ctx.degree())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::collect_mst_edges;
    use graphlib::{generators, mst};
    use netsim::{SimConfig, Simulator};

    #[test]
    fn phase_labels_follow_the_block_layout() {
        let n = 6;
        let t = Timeline::new(n, BLOCKS_PER_PHASE);
        assert_eq!(phase_label(n, 0), "init");
        let labels = [
            "fragment-id-exchange",
            "upcast-moe",
            "bcast-moe",
            "merge-info",
        ];
        for (b, want) in labels.iter().enumerate() {
            assert_eq!(phase_label(n, t.block_start(0, b as u64)), *want);
            assert_eq!(phase_label(n, t.block_start(2, b as u64)), *want);
        }
    }

    fn run(graph: &graphlib::WeightedGraph) -> netsim::RunOutcome<PrimMst> {
        Simulator::new(graph, SimConfig::default())
            .run(|ctx| PrimMst::new(ctx, 1))
            .expect("prim baseline run fails")
    }

    #[test]
    fn matches_kruskal_on_assorted_graphs() {
        let graphs = [
            generators::ring(12, 2).unwrap(),
            generators::path(10, 3).unwrap(),
            generators::complete(9, 5).unwrap(),
            generators::random_connected(20, 0.2, 7).unwrap(),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let out = run(g);
            let edges = collect_mst_edges(g, &out.states, |s| s.mst_ports()).unwrap();
            assert_eq!(edges, mst::kruskal(g).edges, "graph {i}");
        }
    }

    #[test]
    fn absorbs_one_node_per_phase() {
        let g = generators::random_connected(16, 0.2, 1).unwrap();
        let out = run(&g);
        let phases = out.states.iter().map(PrimMst::phases).max().unwrap();
        assert_eq!(phases, 15, "n - 1 absorption phases");
    }

    #[test]
    fn awake_complexity_is_linear_not_logarithmic() {
        // The contrast with Randomized-MST is in the *growth rate*:
        // doubling n roughly doubles Prim's awake max (Θ(n)) while the
        // parallel algorithm's grows like log n.
        let awake_at = |n: usize, parallel: bool| -> u64 {
            let g = generators::random_connected(n, 0.15, 3).unwrap();
            if parallel {
                Simulator::new(&g, SimConfig::default())
                    .run(crate::randomized::RandomizedMst::new)
                    .unwrap()
                    .stats
                    .awake_max()
            } else {
                run(&g).stats.awake_max()
            }
        };
        let (prim_small, prim_big) = (awake_at(24, false), awake_at(96, false));
        assert!(
            prim_big >= 3 * prim_small,
            "prim awake should scale ~linearly: {prim_small} → {prim_big}"
        );
        assert!(
            prim_big >= 2 * (96 - 1),
            "even singletons wake twice per phase: awake {prim_big} at n=96"
        );
        let (par_small, par_big) = (awake_at(24, true), awake_at(96, true));
        assert!(
            par_big < 3 * par_small.max(1),
            "parallel awake should scale ~logarithmically: {par_small} → {par_big}"
        );
    }

    #[test]
    fn leader_can_be_any_id() {
        let g = generators::random_connected(10, 0.3, 4).unwrap();
        let out = Simulator::new(&g, SimConfig::default())
            .run(|ctx| PrimMst::new(ctx, 7))
            .unwrap();
        let edges = collect_mst_edges(&g, &out.states, |s| s.mst_ports()).unwrap();
        assert_eq!(edges, mst::kruskal(&g).edges);
    }

    #[test]
    fn disconnected_graph_is_rejected_up_front() {
        // Non-leader components would never hear DONE; the runner guards.
        let g = graphlib::GraphBuilder::new(4)
            .edge(0, 1, 1)
            .edge(2, 3, 2)
            .build()
            .unwrap();
        let err = crate::runner::run_prim(&g, 1).unwrap_err();
        assert!(matches!(
            err,
            crate::runner::RunError::Disconnected { algorithm: "prim" }
        ));
    }

    #[test]
    fn single_node_is_immediately_done() {
        let g = graphlib::GraphBuilder::new(1).build().unwrap();
        let out = run(&g);
        assert!(out.states[0].is_done());
        assert_eq!(out.stats.awake_max(), 1);
    }
}
