//! The algorithm registry: every runnable MST algorithm in one table.
//!
//! [`AlgorithmSpec`] is the single source of truth for algorithm names,
//! descriptions, and input requirements. The CLI, the benchmark bins, and
//! the sweep harness all resolve algorithms through [`find`] / [`ALGORITHMS`]
//! instead of keeping their own name→function match arms.
//!
//! ```
//! use graphlib::generators;
//! use mst_core::registry;
//!
//! let spec = registry::find("randomized").unwrap();
//! let g = generators::ring(16, 1)?;
//! let out = spec.run(&g, 7)?;
//! assert_eq!(out.edges.len(), 15);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use graphlib::WeightedGraph;
use netsim::{Executor, FaultPlan, Metrics, PhaseSpan, PhaseTotals, Round};

use crate::deterministic::{ColoringMode, DeterministicConfig};
use crate::exec::{round_budget, run_caught, ExecOptions};
use crate::randomized::RandomizedConfig;
use crate::runner::{
    check_always_awake, check_deterministic, check_logstar, check_prim, check_randomized,
    check_spanning_tree, run_always_awake_exec, run_deterministic_exec, run_logstar_exec,
    run_prim_exec, run_randomized_exec, run_spanning_tree_exec, MstOutcome, MstScratch, RunError,
};
use crate::{deterministic, prim, randomized};

/// One registered algorithm: metadata plus a uniform entry point.
///
/// `runner` takes `(graph, options, scratch)`; algorithms that are
/// deterministic simply ignore the seed (see [`AlgorithmSpec::needs_seed`]).
#[derive(Clone, Copy)]
pub struct AlgorithmSpec {
    /// Stable name used by the CLI (`--alg`), sweeps, and reports.
    pub name: &'static str,
    /// One-line description with the paper's complexity bounds.
    pub description: &'static str,
    /// Whether the run consumes randomness (`false` = the seed argument is
    /// ignored and repeated runs are identical).
    pub needs_seed: bool,
    /// Whether the algorithm refuses disconnected inputs
    /// ([`RunError::Disconnected`]).
    pub needs_connected: bool,
    /// `true` if the output is the (unique) minimum spanning tree/forest
    /// rather than just some spanning tree.
    pub produces_mst: bool,
    /// The algorithm's CONGEST constant `C`: the conformance checker holds
    /// every message to `C·⌈log₂ n⌉` bits. The values are measured ceilings
    /// with headroom (see `EXPERIMENTS.md`, "Message-width constants");
    /// they are dominated by the `⌈log₂ W⌉ ≈ ⌈log₂ 64n³⌉` weight field at
    /// small `n`, which is why none of them is a tight `O(1)`.
    pub congest_constant: u64,
    /// Maps `(n, max_external_id, round)` to the algorithm's logical phase
    /// label for that round — the observability plane's bridge from raw
    /// [`RoundReport`](netsim::RoundReport) streams to the block structure
    /// of Figures 2–5. Total: rounds outside the schedule label as
    /// `"out-of-schedule"`, round 0 as `"init"`. Prefer the
    /// [`AlgorithmSpec::phase_spans`] / [`AlgorithmSpec::phase_totals`]
    /// helpers, which feed it the right graph parameters.
    pub label_round: fn(usize, u64, Round) -> &'static str,
    /// Time driver used when [`ExecOptions::executor`] is `None`. Every
    /// registry entry defaults to the calendar driver; the field exists so
    /// callers (and future entries) can pin a different driver without
    /// touching every call site. All drivers are bit-identical — this only
    /// changes wall-clock cost.
    pub default_executor: Executor,
    runner: fn(&WeightedGraph, &ExecOptions, &mut MstScratch) -> Result<MstOutcome, RunError>,
    checker: fn(&WeightedGraph, u64, u64) -> Result<MstOutcome, RunError>,
}

/// Specs are equal iff they are the same registry entry (names are
/// unique in [`ALGORITHMS`]).
impl PartialEq for AlgorithmSpec {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

impl Eq for AlgorithmSpec {}

impl std::fmt::Debug for AlgorithmSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlgorithmSpec")
            .field("name", &self.name)
            .field("needs_seed", &self.needs_seed)
            .field("needs_connected", &self.needs_connected)
            .field("produces_mst", &self.produces_mst)
            .finish_non_exhaustive()
    }
}

impl AlgorithmSpec {
    /// Runs the algorithm on `graph` with `seed`.
    ///
    /// Allocates a fresh [`MstScratch`] for the run; batch callers should
    /// use [`AlgorithmSpec::run_with_scratch`] to amortize that.
    ///
    /// # Errors
    ///
    /// Propagates the runner's [`RunError`].
    pub fn run(&self, graph: &WeightedGraph, seed: u64) -> Result<MstOutcome, RunError> {
        self.run_with_scratch(graph, seed, &mut MstScratch::new())
    }

    /// Runs the algorithm reusing a caller-provided executor scratch.
    ///
    /// The scratch is reset internally, so any [`MstScratch`] can be
    /// threaded through consecutive runs of *different* algorithms and
    /// graphs; keep one per worker thread.
    ///
    /// # Errors
    ///
    /// Propagates the runner's [`RunError`].
    pub fn run_with_scratch(
        &self,
        graph: &WeightedGraph,
        seed: u64,
        scratch: &mut MstScratch,
    ) -> Result<MstOutcome, RunError> {
        self.run_with_options(graph, &ExecOptions::seeded(seed), scratch)
    }

    /// Runs the algorithm under explicit [`ExecOptions`].
    ///
    /// Fault-free, budget-free options take the exact
    /// [`AlgorithmSpec::run_with_scratch`] path. When the run is lossy
    /// ([`ExecOptions::lossy`]: an active fault plan, an energy budget
    /// under an active model, or a non-identity wake policy), two
    /// safeguards engage:
    ///
    /// * a **round-budget watchdog** — unless the caller set an explicit
    ///   budget, [`round_budget`] caps the run so livelock (a protocol
    ///   re-scheduling wakes forever for a signal a drop, crash, or
    ///   energy-exhausted peer destroyed) surfaces as
    ///   [`netsim::SimError::MaxRoundsExceeded`], never a hang;
    /// * **panic capture** — a protocol invariant tripped by a lost
    ///   coordination message becomes [`RunError::Panicked`] instead of
    ///   aborting the process.
    ///
    /// # Errors
    ///
    /// Propagates the runner's [`RunError`]; on lossy runs also
    /// [`RunError::Panicked`] and watchdog-capped simulator errors.
    pub fn run_with_options(
        &self,
        graph: &WeightedGraph,
        opts: &ExecOptions,
        scratch: &mut MstScratch,
    ) -> Result<MstOutcome, RunError> {
        let mut opts = opts.clone();
        if opts.executor.is_none() {
            opts.executor = Some(self.default_executor);
        }
        if !opts.lossy() {
            return (self.runner)(graph, &opts, scratch);
        }
        if opts.max_rounds.is_none() {
            // Budget-only runs (no fault plan) size the watchdog off the
            // calm plan — no jitter or sleep stretch applies.
            let plan = opts.active_faults().cloned().unwrap_or_default();
            opts.max_rounds = Some(round_budget(graph.node_count(), &plan));
        }
        run_caught(|| (self.runner)(graph, &opts, scratch))
    }

    /// Runs the algorithm under an injected [`FaultPlan`]: the uniform
    /// chaos-harness entry point, equal to [`AlgorithmSpec::run_with_options`]
    /// with `ExecOptions::seeded(seed).with_faults(plan)`.
    ///
    /// # Errors
    ///
    /// As [`AlgorithmSpec::run_with_options`].
    pub fn run_with_faults(
        &self,
        graph: &WeightedGraph,
        seed: u64,
        plan: &FaultPlan,
        scratch: &mut MstScratch,
    ) -> Result<MstOutcome, RunError> {
        self.run_with_options(
            graph,
            &ExecOptions::seeded(seed).with_faults(plan.clone()),
            scratch,
        )
    }

    /// Folds a recorded [`Metrics`] stream into chronological
    /// [`PhaseSpan`]s under this algorithm's round labeling on `graph`
    /// (the labeler needs the node count and id bound to reconstruct the
    /// block timeline).
    pub fn phase_spans(&self, graph: &WeightedGraph, metrics: &Metrics) -> Vec<PhaseSpan> {
        let n = graph.node_count();
        let id_bound = graph.max_external_id();
        metrics.phase_spans(|round| (self.label_round)(n, id_bound, round))
    }

    /// Whole-run per-phase totals under this algorithm's round labeling on
    /// `graph` — the per-phase awake breakdown of the Table-1 report.
    pub fn phase_totals(&self, graph: &WeightedGraph, metrics: &Metrics) -> Vec<PhaseTotals> {
        let n = graph.node_count();
        let id_bound = graph.max_external_id();
        metrics.phase_totals(|round| (self.label_round)(n, id_bound, round))
    }

    /// The per-message bit budget the conformance checker enforces for this
    /// algorithm on an `n`-node graph: `congest_constant · ⌈log₂ n⌉`.
    pub fn bit_budget(&self, n: usize) -> usize {
        self.congest_constant as usize * netsim::bits_for_range(n.max(2) as u64)
    }

    /// Runs the algorithm under the model-conformance checker
    /// ([`netsim::ValidatingExecutor`]): tracing forced on, every message
    /// held to [`AlgorithmSpec::bit_budget`], the full trace audited
    /// against the Section 1.1 rules, and the run repeated with the same
    /// seed to prove determinism. Roughly 2× the cost of
    /// [`AlgorithmSpec::run`] plus tracing overhead.
    ///
    /// # Errors
    ///
    /// [`RunError::Model`] listing the violated rules, or any error the
    /// plain run path can produce.
    pub fn check(&self, graph: &WeightedGraph, seed: u64) -> Result<ModelCheck, RunError> {
        let outcome = (self.checker)(graph, seed, self.congest_constant)?;
        let n = graph.node_count();
        Ok(ModelCheck {
            algorithm: self.name,
            n,
            bit_budget: self.bit_budget(n),
            max_message_bits: outcome.stats.max_message_bits,
            log_constant: outcome.stats.log_constant(n),
            outcome,
        })
    }
}

/// The report of a passed conformance check (a failed one is a
/// [`RunError::Model`] listing the violations).
#[derive(Debug, Clone)]
pub struct ModelCheck {
    /// Registry name of the checked algorithm.
    pub algorithm: &'static str,
    /// Node count of the checked graph.
    pub n: usize,
    /// The enforced per-message budget, in bits.
    pub bit_budget: usize,
    /// Largest message actually observed, in bits.
    pub max_message_bits: u64,
    /// Observed CONGEST constant `⌈max_message_bits / ⌈log₂ n⌉⌉`.
    pub log_constant: u64,
    /// The validated run's ordinary outcome.
    pub outcome: MstOutcome,
}

/// Every algorithm the workspace can execute, in presentation order.
pub const ALGORITHMS: &[AlgorithmSpec] = &[
    AlgorithmSpec {
        name: "randomized",
        description: "O(log n) awake, O(n log n) rounds (paper, Section 2.2)",
        needs_seed: true,
        needs_connected: false,
        produces_mst: true,
        congest_constant: 14,
        label_round: |n, _id, r| randomized::phase_label(n, r),
        default_executor: Executor::Calendar,
        runner: |g, opts, scratch| {
            run_randomized_exec(g, opts, RandomizedConfig::default(), scratch)
        },
        checker: check_randomized,
    },
    AlgorithmSpec {
        name: "deterministic",
        description: "O(log n) awake, O(n N log n) rounds (paper, Section 2.3)",
        needs_seed: false,
        needs_connected: false,
        produces_mst: true,
        congest_constant: 14,
        label_round: |n, id_bound, r| {
            deterministic::phase_label(n, id_bound, ColoringMode::FastAwake, r)
        },
        default_executor: Executor::Calendar,
        runner: |g, opts, scratch| {
            run_deterministic_exec(g, opts, DeterministicConfig::default(), scratch)
        },
        checker: |g, _seed, c| check_deterministic(g, c),
    },
    AlgorithmSpec {
        name: "logstar",
        description: "O(log n log* n) awake (paper, Corollary 1)",
        needs_seed: false,
        needs_connected: false,
        produces_mst: true,
        congest_constant: 14,
        label_round: |n, id_bound, r| {
            deterministic::phase_label(n, id_bound, ColoringMode::ColeVishkin, r)
        },
        default_executor: Executor::Calendar,
        runner: |g, opts, scratch| run_logstar_exec(g, opts, scratch),
        checker: |g, _seed, c| check_logstar(g, c),
    },
    AlgorithmSpec {
        name: "prim",
        description: "sequential baseline, Θ(n) awake",
        needs_seed: false,
        needs_connected: true,
        produces_mst: true,
        congest_constant: 14,
        label_round: |n, _id, r| prim::phase_label(n, r),
        default_executor: Executor::Calendar,
        runner: |g, opts, scratch| run_prim_exec(g, opts, 1, scratch),
        checker: |g, _seed, c| check_prim(g, 1, c),
    },
    AlgorithmSpec {
        name: "spanning-tree",
        description: "arbitrary spanning tree, O(log n) awake",
        needs_seed: true,
        needs_connected: false,
        produces_mst: false,
        congest_constant: 14,
        label_round: |n, _id, r| randomized::phase_label(n, r),
        default_executor: Executor::Calendar,
        runner: run_spanning_tree_exec,
        checker: check_spanning_tree,
    },
    AlgorithmSpec {
        name: "always-awake",
        description: "traditional-model GHS baseline, awake = rounds",
        needs_seed: true,
        needs_connected: false,
        produces_mst: true,
        congest_constant: 14,
        label_round: |n, _id, r| randomized::phase_label(n, r),
        default_executor: Executor::Calendar,
        runner: run_always_awake_exec,
        checker: check_always_awake,
    },
];

/// Looks up an algorithm by its registry name.
pub fn find(name: &str) -> Option<&'static AlgorithmSpec> {
    ALGORITHMS.iter().find(|a| a.name == name)
}

/// All registry names, comma-separated — for error messages and usage text.
pub fn names() -> String {
    ALGORITHMS
        .iter()
        .map(|a| a.name)
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::{generators, mst};

    #[test]
    fn registry_has_all_six_unique_names() {
        assert_eq!(ALGORITHMS.len(), 6);
        let uniq: std::collections::BTreeSet<&str> = ALGORITHMS.iter().map(|a| a.name).collect();
        assert_eq!(uniq.len(), 6);
        assert!(names().contains("randomized"));
    }

    #[test]
    fn find_resolves_known_and_rejects_unknown() {
        assert_eq!(find("prim").unwrap().name, "prim");
        assert!(find("prim").unwrap().needs_connected);
        assert!(find("bogus").is_none());
    }

    #[test]
    fn every_mst_algorithm_matches_kruskal_via_registry() {
        let g = generators::random_connected(14, 0.25, 6).unwrap();
        let reference = mst::kruskal(&g).edges;
        for spec in ALGORITHMS {
            let out = spec
                .run(&g, 3)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            if spec.produces_mst {
                assert_eq!(out.edges, reference, "{}", spec.name);
            } else {
                assert_eq!(out.edges.len(), 13, "{}", spec.name);
            }
        }
    }

    #[test]
    fn one_scratch_reused_across_all_algorithms_matches_fresh_runs() {
        // A single pool threaded through all six algorithms (different
        // message choreographies, graph reused) must leave no residue:
        // every pooled run equals the allocate-fresh run bit for bit.
        let g = generators::random_connected(14, 0.25, 6).unwrap();
        let mut scratch = MstScratch::new();
        for spec in ALGORITHMS {
            let pooled = spec.run_with_scratch(&g, 3, &mut scratch).unwrap();
            let fresh = spec.run(&g, 3).unwrap();
            assert_eq!(pooled.edges, fresh.edges, "{}", spec.name);
            assert_eq!(pooled.stats, fresh.stats, "{}", spec.name);
            assert_eq!(pooled.phases, fresh.phases, "{}", spec.name);
        }
    }

    #[test]
    fn every_algorithm_passes_the_model_check() {
        let g = generators::random_connected(12, 0.3, 5).unwrap();
        for spec in ALGORITHMS {
            let check = spec
                .check(&g, 4)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(check.algorithm, spec.name);
            assert!(check.max_message_bits > 0, "{}", spec.name);
            assert!(
                check.max_message_bits <= check.bit_budget as u64,
                "{}: {} bits over the {}-bit budget",
                spec.name,
                check.max_message_bits,
                check.bit_budget
            );
            assert!(check.log_constant <= spec.congest_constant, "{}", spec.name);
            // The validated run produces the same answer as the plain one.
            let plain = spec.run(&g, 4).unwrap();
            assert_eq!(check.outcome.edges, plain.edges, "{}", spec.name);
        }
    }

    #[test]
    fn check_reports_budget_for_the_graph_size() {
        let spec = find("randomized").unwrap();
        // ⌈log₂ 12⌉ = 4.
        assert_eq!(spec.bit_budget(12), spec.congest_constant as usize * 4);
    }

    #[test]
    fn seedless_algorithms_ignore_the_seed() {
        let g = generators::random_connected(12, 0.3, 2).unwrap();
        for spec in ALGORITHMS.iter().filter(|a| !a.needs_seed) {
            let a = spec.run(&g, 1).unwrap();
            let b = spec.run(&g, 99).unwrap();
            assert_eq!(a.edges, b.edges, "{}", spec.name);
            assert_eq!(a.stats, b.stats, "{}", spec.name);
        }
    }
}
