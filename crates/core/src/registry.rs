//! The algorithm registry: every runnable MST algorithm in one table.
//!
//! [`AlgorithmSpec`] is the single source of truth for algorithm names,
//! descriptions, and input requirements. The CLI, the benchmark bins, and
//! the sweep harness all resolve algorithms through [`find`] / [`ALGORITHMS`]
//! instead of keeping their own name→function match arms.
//!
//! ```
//! use graphlib::generators;
//! use mst_core::registry;
//!
//! let spec = registry::find("randomized").unwrap();
//! let g = generators::ring(16, 1)?;
//! let out = spec.run(&g, 7)?;
//! assert_eq!(out.edges.len(), 15);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use graphlib::WeightedGraph;

use crate::runner::{
    run_always_awake, run_deterministic, run_logstar, run_prim, run_randomized, run_spanning_tree,
    MstOutcome, RunError,
};

/// One registered algorithm: metadata plus a uniform entry point.
///
/// `runner` takes `(graph, seed)`; algorithms that are deterministic
/// simply ignore the seed (see [`AlgorithmSpec::needs_seed`]).
#[derive(Clone, Copy)]
pub struct AlgorithmSpec {
    /// Stable name used by the CLI (`--alg`), sweeps, and reports.
    pub name: &'static str,
    /// One-line description with the paper's complexity bounds.
    pub description: &'static str,
    /// Whether the run consumes randomness (`false` = the seed argument is
    /// ignored and repeated runs are identical).
    pub needs_seed: bool,
    /// Whether the algorithm refuses disconnected inputs
    /// ([`RunError::Disconnected`]).
    pub needs_connected: bool,
    /// `true` if the output is the (unique) minimum spanning tree/forest
    /// rather than just some spanning tree.
    pub produces_mst: bool,
    runner: fn(&WeightedGraph, u64) -> Result<MstOutcome, RunError>,
}

/// Specs are equal iff they are the same registry entry (names are
/// unique in [`ALGORITHMS`]).
impl PartialEq for AlgorithmSpec {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

impl Eq for AlgorithmSpec {}

impl std::fmt::Debug for AlgorithmSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlgorithmSpec")
            .field("name", &self.name)
            .field("needs_seed", &self.needs_seed)
            .field("needs_connected", &self.needs_connected)
            .field("produces_mst", &self.produces_mst)
            .finish_non_exhaustive()
    }
}

impl AlgorithmSpec {
    /// Runs the algorithm on `graph` with `seed`.
    ///
    /// # Errors
    ///
    /// Propagates the runner's [`RunError`].
    pub fn run(&self, graph: &WeightedGraph, seed: u64) -> Result<MstOutcome, RunError> {
        (self.runner)(graph, seed)
    }
}

/// Every algorithm the workspace can execute, in presentation order.
pub const ALGORITHMS: &[AlgorithmSpec] = &[
    AlgorithmSpec {
        name: "randomized",
        description: "O(log n) awake, O(n log n) rounds (paper, Section 2.2)",
        needs_seed: true,
        needs_connected: false,
        produces_mst: true,
        runner: run_randomized,
    },
    AlgorithmSpec {
        name: "deterministic",
        description: "O(log n) awake, O(n N log n) rounds (paper, Section 2.3)",
        needs_seed: false,
        needs_connected: false,
        produces_mst: true,
        runner: |g, _seed| run_deterministic(g),
    },
    AlgorithmSpec {
        name: "logstar",
        description: "O(log n log* n) awake (paper, Corollary 1)",
        needs_seed: false,
        needs_connected: false,
        produces_mst: true,
        runner: |g, _seed| run_logstar(g),
    },
    AlgorithmSpec {
        name: "prim",
        description: "sequential baseline, Θ(n) awake",
        needs_seed: false,
        needs_connected: true,
        produces_mst: true,
        runner: |g, _seed| run_prim(g, 1),
    },
    AlgorithmSpec {
        name: "spanning-tree",
        description: "arbitrary spanning tree, O(log n) awake",
        needs_seed: true,
        needs_connected: false,
        produces_mst: false,
        runner: run_spanning_tree,
    },
    AlgorithmSpec {
        name: "always-awake",
        description: "traditional-model GHS baseline, awake = rounds",
        needs_seed: true,
        needs_connected: false,
        produces_mst: true,
        runner: run_always_awake,
    },
];

/// Looks up an algorithm by its registry name.
pub fn find(name: &str) -> Option<&'static AlgorithmSpec> {
    ALGORITHMS.iter().find(|a| a.name == name)
}

/// All registry names, comma-separated — for error messages and usage text.
pub fn names() -> String {
    ALGORITHMS
        .iter()
        .map(|a| a.name)
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::{generators, mst};

    #[test]
    fn registry_has_all_six_unique_names() {
        assert_eq!(ALGORITHMS.len(), 6);
        let uniq: std::collections::HashSet<&str> = ALGORITHMS.iter().map(|a| a.name).collect();
        assert_eq!(uniq.len(), 6);
        assert!(names().contains("randomized"));
    }

    #[test]
    fn find_resolves_known_and_rejects_unknown() {
        assert_eq!(find("prim").unwrap().name, "prim");
        assert!(find("prim").unwrap().needs_connected);
        assert!(find("bogus").is_none());
    }

    #[test]
    fn every_mst_algorithm_matches_kruskal_via_registry() {
        let g = generators::random_connected(14, 0.25, 6).unwrap();
        let reference = mst::kruskal(&g).edges;
        for spec in ALGORITHMS {
            let out = spec
                .run(&g, 3)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            if spec.produces_mst {
                assert_eq!(out.edges, reference, "{}", spec.name);
            } else {
                assert_eq!(out.edges.len(), 13, "{}", spec.name);
            }
        }
    }

    #[test]
    fn seedless_algorithms_ignore_the_seed() {
        let g = generators::random_connected(12, 0.3, 2).unwrap();
        for spec in ALGORITHMS.iter().filter(|a| !a.needs_seed) {
            let a = spec.run(&g, 1).unwrap();
            let b = spec.run(&g, 99).unwrap();
            assert_eq!(a.edges, b.edges, "{}", spec.name);
            assert_eq!(a.stats, b.stats, "{}", spec.name);
        }
    }
}
