//! The algorithm registry: every runnable MST algorithm in one table.
//!
//! [`AlgorithmSpec`] is the single source of truth for algorithm names,
//! descriptions, and input requirements. The CLI, the benchmark bins, and
//! the sweep harness all resolve algorithms through [`find`] / [`ALGORITHMS`]
//! instead of keeping their own name→function match arms.
//!
//! ```
//! use graphlib::generators;
//! use mst_core::registry;
//!
//! let spec = registry::find("randomized").unwrap();
//! let g = generators::ring(16, 1)?;
//! let out = spec.run(&g, 7)?;
//! assert_eq!(out.edges.len(), 15);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use graphlib::WeightedGraph;

use crate::deterministic::DeterministicConfig;
use crate::randomized::RandomizedConfig;
use crate::runner::{
    run_always_awake_scratch, run_deterministic_scratch, run_logstar_scratch, run_prim_scratch,
    run_randomized_scratch, run_spanning_tree_scratch, MstOutcome, MstScratch, RunError,
};

/// One registered algorithm: metadata plus a uniform entry point.
///
/// `runner` takes `(graph, seed, scratch)`; algorithms that are
/// deterministic simply ignore the seed (see [`AlgorithmSpec::needs_seed`]).
#[derive(Clone, Copy)]
pub struct AlgorithmSpec {
    /// Stable name used by the CLI (`--alg`), sweeps, and reports.
    pub name: &'static str,
    /// One-line description with the paper's complexity bounds.
    pub description: &'static str,
    /// Whether the run consumes randomness (`false` = the seed argument is
    /// ignored and repeated runs are identical).
    pub needs_seed: bool,
    /// Whether the algorithm refuses disconnected inputs
    /// ([`RunError::Disconnected`]).
    pub needs_connected: bool,
    /// `true` if the output is the (unique) minimum spanning tree/forest
    /// rather than just some spanning tree.
    pub produces_mst: bool,
    runner: fn(&WeightedGraph, u64, &mut MstScratch) -> Result<MstOutcome, RunError>,
}

/// Specs are equal iff they are the same registry entry (names are
/// unique in [`ALGORITHMS`]).
impl PartialEq for AlgorithmSpec {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

impl Eq for AlgorithmSpec {}

impl std::fmt::Debug for AlgorithmSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlgorithmSpec")
            .field("name", &self.name)
            .field("needs_seed", &self.needs_seed)
            .field("needs_connected", &self.needs_connected)
            .field("produces_mst", &self.produces_mst)
            .finish_non_exhaustive()
    }
}

impl AlgorithmSpec {
    /// Runs the algorithm on `graph` with `seed`.
    ///
    /// Allocates a fresh [`MstScratch`] for the run; batch callers should
    /// use [`AlgorithmSpec::run_with_scratch`] to amortize that.
    ///
    /// # Errors
    ///
    /// Propagates the runner's [`RunError`].
    pub fn run(&self, graph: &WeightedGraph, seed: u64) -> Result<MstOutcome, RunError> {
        self.run_with_scratch(graph, seed, &mut MstScratch::new())
    }

    /// Runs the algorithm reusing a caller-provided executor scratch.
    ///
    /// The scratch is reset internally, so any [`MstScratch`] can be
    /// threaded through consecutive runs of *different* algorithms and
    /// graphs; keep one per worker thread.
    ///
    /// # Errors
    ///
    /// Propagates the runner's [`RunError`].
    pub fn run_with_scratch(
        &self,
        graph: &WeightedGraph,
        seed: u64,
        scratch: &mut MstScratch,
    ) -> Result<MstOutcome, RunError> {
        (self.runner)(graph, seed, scratch)
    }
}

/// Every algorithm the workspace can execute, in presentation order.
pub const ALGORITHMS: &[AlgorithmSpec] = &[
    AlgorithmSpec {
        name: "randomized",
        description: "O(log n) awake, O(n log n) rounds (paper, Section 2.2)",
        needs_seed: true,
        needs_connected: false,
        produces_mst: true,
        runner: |g, seed, scratch| {
            run_randomized_scratch(g, seed, RandomizedConfig::default(), scratch)
        },
    },
    AlgorithmSpec {
        name: "deterministic",
        description: "O(log n) awake, O(n N log n) rounds (paper, Section 2.3)",
        needs_seed: false,
        needs_connected: false,
        produces_mst: true,
        runner: |g, _seed, scratch| {
            run_deterministic_scratch(g, DeterministicConfig::default(), scratch)
        },
    },
    AlgorithmSpec {
        name: "logstar",
        description: "O(log n log* n) awake (paper, Corollary 1)",
        needs_seed: false,
        needs_connected: false,
        produces_mst: true,
        runner: |g, _seed, scratch| run_logstar_scratch(g, scratch),
    },
    AlgorithmSpec {
        name: "prim",
        description: "sequential baseline, Θ(n) awake",
        needs_seed: false,
        needs_connected: true,
        produces_mst: true,
        runner: |g, _seed, scratch| run_prim_scratch(g, 1, scratch),
    },
    AlgorithmSpec {
        name: "spanning-tree",
        description: "arbitrary spanning tree, O(log n) awake",
        needs_seed: true,
        needs_connected: false,
        produces_mst: false,
        runner: run_spanning_tree_scratch,
    },
    AlgorithmSpec {
        name: "always-awake",
        description: "traditional-model GHS baseline, awake = rounds",
        needs_seed: true,
        needs_connected: false,
        produces_mst: true,
        runner: run_always_awake_scratch,
    },
];

/// Looks up an algorithm by its registry name.
pub fn find(name: &str) -> Option<&'static AlgorithmSpec> {
    ALGORITHMS.iter().find(|a| a.name == name)
}

/// All registry names, comma-separated — for error messages and usage text.
pub fn names() -> String {
    ALGORITHMS
        .iter()
        .map(|a| a.name)
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::{generators, mst};

    #[test]
    fn registry_has_all_six_unique_names() {
        assert_eq!(ALGORITHMS.len(), 6);
        let uniq: std::collections::HashSet<&str> = ALGORITHMS.iter().map(|a| a.name).collect();
        assert_eq!(uniq.len(), 6);
        assert!(names().contains("randomized"));
    }

    #[test]
    fn find_resolves_known_and_rejects_unknown() {
        assert_eq!(find("prim").unwrap().name, "prim");
        assert!(find("prim").unwrap().needs_connected);
        assert!(find("bogus").is_none());
    }

    #[test]
    fn every_mst_algorithm_matches_kruskal_via_registry() {
        let g = generators::random_connected(14, 0.25, 6).unwrap();
        let reference = mst::kruskal(&g).edges;
        for spec in ALGORITHMS {
            let out = spec
                .run(&g, 3)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            if spec.produces_mst {
                assert_eq!(out.edges, reference, "{}", spec.name);
            } else {
                assert_eq!(out.edges.len(), 13, "{}", spec.name);
            }
        }
    }

    #[test]
    fn one_scratch_reused_across_all_algorithms_matches_fresh_runs() {
        // A single pool threaded through all six algorithms (different
        // message choreographies, graph reused) must leave no residue:
        // every pooled run equals the allocate-fresh run bit for bit.
        let g = generators::random_connected(14, 0.25, 6).unwrap();
        let mut scratch = MstScratch::new();
        for spec in ALGORITHMS {
            let pooled = spec.run_with_scratch(&g, 3, &mut scratch).unwrap();
            let fresh = spec.run(&g, 3).unwrap();
            assert_eq!(pooled.edges, fresh.edges, "{}", spec.name);
            assert_eq!(pooled.stats, fresh.stats, "{}", spec.name);
            assert_eq!(pooled.phases, fresh.phases, "{}", spec.name);
        }
    }

    #[test]
    fn seedless_algorithms_ignore_the_seed() {
        let g = generators::random_connected(12, 0.3, 2).unwrap();
        for spec in ALGORITHMS.iter().filter(|a| !a.needs_seed) {
            let a = spec.run(&g, 1).unwrap();
            let b = spec.run(&g, 99).unwrap();
            assert_eq!(a.edges, b.edges, "{}", spec.name);
            assert_eq!(a.stats, b.stats, "{}", spec.name);
        }
    }
}
