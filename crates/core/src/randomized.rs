//! `Randomized-MST` (Section 2.2): the awake-optimal randomized algorithm.
//!
//! Each phase is ten transmission-schedule blocks on the global timeline:
//!
//! | # | block | procedure | purpose |
//! |---|---|---|---|
//! | 0 | `FragIdExchange`  | Transmit-Adjacent   | learn neighbors' (fragment, level) |
//! | 1 | `UpcastMoe`       | Upcast-Min          | fragment MOE to the root |
//! | 2 | `BcastMoe`        | Fragment-Broadcast  | MOE to all; `None` ⇒ DONE, halt |
//! | 3 | `CoinBcast`       | Fragment-Broadcast  | root's coin flip to all |
//! | 4 | `CoinExchange`    | Transmit-Adjacent   | coins + MOE flags across fragments |
//! | 5 | `UpcastValidity`  | Upcast-Min          | is our MOE tails→heads? |
//! | 6 | `BcastValidity`   | Fragment-Broadcast  | "we merge this phase" to all |
//! | 7 | `MergeInfo`       | Transmit-Adjacent   | `u_T` learns `u_H`'s (fragment, level); attach notice |
//! | 8 | `MergeUp`         | Transmission-Schedule | NEW-vals sweep from `u_T` up to the old root |
//! | 9 | `MergeDown`       | Transmission-Schedule | NEW-vals sweep to off-path nodes |
//!
//! A fragment's MOE is *valid* iff its root flipped tails and the target
//! fragment's root flipped heads; only valid MOEs are merged, which keeps
//! every merge a star around a heads fragment and therefore `O(1)` awake
//! rounds. Expected constant-factor fragment decay gives `O(log n)` phases
//! w.h.p.; each node is awake `O(1)` rounds per phase and each phase is
//! `O(n)` rounds, matching the paper's `O(log n)` awake / `O(n log n)`
//! round bounds.

use graphlib::Port;
use netsim::{Envelope, NextWake, NodeCtx, Outbox, Protocol, Round};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::fragment::{FragmentCore, Step};
use crate::ldt::LdtView;
use crate::msg::MstMsg;
use crate::schedule::ts_offsets;
use crate::timeline::{Position, Timeline};

/// Blocks per phase of `Randomized-MST`.
pub const BLOCKS_PER_PHASE: u64 = 10;

const FRAG_ID_EXCHANGE: u64 = 0;
const UPCAST_MOE: u64 = 1;
const BCAST_MOE: u64 = 2;
const COIN_BCAST: u64 = 3;
const COIN_EXCHANGE: u64 = 4;
const UPCAST_VALIDITY: u64 = 5;
const BCAST_VALIDITY: u64 = 6;
const MERGE_INFO: u64 = 7;
const MERGE_UP: u64 = 8;
const MERGE_DOWN: u64 = 9;

/// The Figures 2–5 phase label of `round` in `Randomized-MST`'s block
/// schedule (LDT build, minimum-outgoing-edge upcast/broadcast, coin
/// tossing, validity check, fragment merge). `Spanning-Tree` and the
/// always-awake baseline share the identical timeline, so the registry
/// reuses this labeler for all three. Backs the observability plane's
/// [`phase_spans`](netsim::Metrics::phase_spans); total — never panics.
pub fn phase_label(n: usize, round: Round) -> &'static str {
    if round == 0 {
        return "init";
    }
    match Timeline::new(n, BLOCKS_PER_PHASE).position(round).block {
        FRAG_ID_EXCHANGE => "fragment-id-exchange",
        UPCAST_MOE => "upcast-moe",
        BCAST_MOE => "bcast-moe",
        COIN_BCAST => "coin-bcast",
        COIN_EXCHANGE => "coin-exchange",
        UPCAST_VALIDITY => "upcast-validity",
        BCAST_VALIDITY => "bcast-validity",
        MERGE_INFO => "merge-info",
        MERGE_UP => "merge-up",
        MERGE_DOWN => "merge-down",
        _ => "out-of-schedule",
    }
}

/// How a node picks its outgoing-edge candidate in Step (i).
///
/// The paper's MST algorithm uses [`EdgeSelection::MinWeight`] (the MOE).
/// [`EdgeSelection::MinPort`] instead grabs the first outgoing port — the
/// merging machinery is identical, but the result is only *some* spanning
/// tree, reproducing the Barenboim–Maimon-style contrast the paper draws:
/// an LDT-based construction yields an arbitrary spanning tree for free,
/// and it is exactly the minimum-outgoing-edge choice that upgrades it to
/// the MST at no awake-complexity cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EdgeSelection {
    /// Minimum-weight outgoing edge — the MOE of GHS; output is the MST.
    #[default]
    MinWeight,
    /// Lowest-numbered outgoing port — output is an arbitrary spanning
    /// tree (still `O(log n)` awake).
    MinPort,
}

/// Tunables for the ablation experiments. [`RandomizedConfig::default`]
/// reproduces the paper exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomizedConfig {
    /// Probability a fragment root flips heads (paper: fair coin, `0.5`).
    // lint:allow(determinism) -- config knob handed to the seeded RNG's gen_bool; never arithmetic on state
    pub heads_probability: f64,
    /// If `false`, skip the coin-flip pruning entirely and merge along
    /// *every* MOE (the ablation showing why Step (i)'s restriction is
    /// needed — merge chains stop being stars and the staged NEW-vals can
    /// no longer reach everyone in one sweep, so the LDT invariant breaks
    /// or awake time blows up).
    pub prune_with_coins: bool,
    /// Outgoing-edge choice (MST vs arbitrary spanning tree).
    pub selection: EdgeSelection,
}

impl Default for RandomizedConfig {
    fn default() -> Self {
        RandomizedConfig {
            heads_probability: 0.5, // lint:allow(determinism) -- the paper's fair coin, fed to the seeded RNG
            prune_with_coins: true,
            selection: EdgeSelection::MinWeight,
        }
    }
}

/// Per-node state of `Randomized-MST`. Implements [`netsim::Protocol`];
/// create instances with [`RandomizedMst::new`] inside the simulator
/// factory.
#[derive(Debug, Clone)]
pub struct RandomizedMst {
    timeline: Timeline,
    core: FragmentCore,
    rng: SmallRng,
    config: RandomizedConfig,

    // --- phase scratch ---
    /// Min MOE weight aggregated from children during `UpcastMoe`.
    agg_moe: Option<u64>,
    /// The fragment MOE weight after `BcastMoe` (`None` = done).
    frag_moe: Option<u64>,
    /// `Some(port)` iff this node is the fragment's MOE endpoint `u_T`.
    moe_port: Option<Port>,
    /// This fragment's coin for the phase.
    coin_heads: bool,
    /// At `u_T`: was our MOE tails→heads?
    valid_out: Option<bool>,
    /// Validity aggregated from children during `UpcastValidity`.
    agg_valid: Option<bool>,
    /// Does this fragment merge this phase?
    merging: bool,

    done: bool,
    phases: u64,
    /// The next planned wake: (phase, block, offset, step).
    next_step: Option<(u64, u64, u64, Step)>,
}

impl RandomizedMst {
    /// Creates the node state for `ctx` with the paper's parameters.
    pub fn new(ctx: &NodeCtx) -> Self {
        Self::with_config(ctx, RandomizedConfig::default())
    }

    /// Creates the node state with ablation overrides.
    pub fn with_config(ctx: &NodeCtx, config: RandomizedConfig) -> Self {
        RandomizedMst {
            timeline: Timeline::new(ctx.n, BLOCKS_PER_PHASE),
            core: FragmentCore::new(ctx),
            rng: SmallRng::seed_from_u64(ctx.rng_seed),
            config,
            agg_moe: None,
            frag_moe: None,
            moe_port: None,
            coin_heads: false,
            valid_out: None,
            agg_valid: None,
            merging: false,
            done: false,
            phases: 0,
            next_step: None,
        }
    }

    /// `true` once the node has learned the MST is complete.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Number of completed merge phases this node went through.
    pub fn phases(&self) -> u64 {
        self.phases
    }

    /// Output: `true` at index `p` iff the edge behind port `p` is an MST
    /// edge.
    pub fn mst_ports(&self) -> &[bool] {
        &self.core.mst_ports
    }

    /// LDT snapshot for invariant checking.
    pub fn ldt_view(&self) -> LdtView {
        self.core.ldt_view()
    }

    /// The node's outgoing-edge candidate as `(weight, port)` — the
    /// weight stays in the tuple under either selection rule because it is
    /// the globally unique identifier the upcast/broadcast use to locate
    /// the chosen endpoint.
    fn local_candidate(&self, ctx: &NodeCtx) -> Option<(u64, Port)> {
        match self.config.selection {
            EdgeSelection::MinWeight => self.core.local_moe(ctx),
            EdgeSelection::MinPort => self.core.nbr.iter().enumerate().find_map(|(i, info)| {
                let (frag, _) = (*info)?;
                (frag != self.core.frag).then(|| (ctx.port_weights[i], Port::new(i as u32)))
            }),
        }
    }

    /// The node's wake schedule inside one block, sorted by offset.
    fn steps_for(&self, block: u64, degree: usize) -> Vec<(u64, Step)> {
        let o = ts_offsets(self.timeline.n(), self.core.level);
        let root = self.core.is_root();
        let kids = self.core.has_children();
        let mut steps = Vec::with_capacity(2);
        match block {
            FRAG_ID_EXCHANGE | COIN_EXCHANGE | MERGE_INFO => {
                if degree > 0 {
                    steps.push((o.side, Step::Side));
                }
            }
            UPCAST_MOE | UPCAST_VALIDITY => {
                if kids {
                    steps.push((o.up_receive, Step::UpReceive));
                }
                if let Some(up) = o.up_send {
                    steps.push((up, Step::UpSend));
                }
            }
            BCAST_MOE | COIN_BCAST | BCAST_VALIDITY => {
                if let Some(dr) = o.down_receive {
                    steps.push((dr, Step::DownReceive));
                }
                if kids || root {
                    // Childless roots keep one wake here: it is where a
                    // singleton fragment does its local MOE/coin/validity
                    // bookkeeping (and where DONE is decided).
                    steps.push((o.down_send, Step::DownSend));
                }
            }
            MERGE_UP => {
                if self.merging {
                    if kids {
                        steps.push((o.up_receive, Step::UpReceive));
                    }
                    if let Some(up) = o.up_send {
                        steps.push((up, Step::UpSend));
                    }
                }
            }
            MERGE_DOWN => {
                if self.merging {
                    if let Some(dr) = o.down_receive {
                        steps.push((dr, Step::DownReceive));
                    }
                    if kids {
                        steps.push((o.down_send, Step::DownSend));
                    }
                }
            }
            _ => unreachable!("randomized timeline has {BLOCKS_PER_PHASE} blocks"),
        }
        // lint:allow(determinism) -- step offsets within a block are pairwise distinct by Timeline construction
        steps.sort_unstable_by_key(|&(off, _)| off);
        steps
    }

    /// Finds the next wake at or after (`phase`, `block`, offsets past
    /// `after`), applying phase-end updates whenever the scan crosses a
    /// phase boundary.
    fn advance(
        &mut self,
        mut phase: u64,
        mut block: u64,
        mut after: Option<u64>,
        degree: usize,
    ) -> NextWake {
        loop {
            let next = self
                .steps_for(block, degree)
                .into_iter()
                .find(|&(off, _)| after.is_none_or(|a| off > a));
            if let Some((offset, step)) = next {
                self.next_step = Some((phase, block, offset, step));
                return NextWake::At(self.timeline.round(Position {
                    phase,
                    block,
                    offset,
                }));
            }
            after = None;
            block += 1;
            if block == BLOCKS_PER_PHASE {
                block = 0;
                phase += 1;
                self.end_phase();
            }
        }
    }

    fn end_phase(&mut self) {
        self.core.apply_merge();
        self.core.clear_phase_scratch();
        self.agg_moe = None;
        self.frag_moe = None;
        self.moe_port = None;
        self.coin_heads = false;
        self.valid_out = None;
        self.agg_valid = None;
        self.merging = false;
        self.phases += 1;
    }

    /// The fragment-level validity verdict at the root (folds the root's
    /// own `u_T` knowledge with the upcast aggregate).
    fn root_validity(&self) -> bool {
        let own = if self.moe_port.is_some() {
            self.valid_out
        } else {
            None
        };
        own.or(self.agg_valid).unwrap_or(false)
    }
}

impl Protocol for RandomizedMst {
    type Msg = MstMsg;

    fn init(&mut self, ctx: &NodeCtx) -> NextWake {
        self.advance(0, 0, None, ctx.degree())
    }

    fn send(&mut self, ctx: &NodeCtx, round: Round, outbox: &mut Outbox<MstMsg>) {
        let (phase, block, offset, step) = self.next_step.expect("send only at planned wakes");
        debug_assert_eq!(
            self.timeline.round(Position {
                phase,
                block,
                offset
            }),
            round
        );

        match (block, step) {
            (FRAG_ID_EXCHANGE, Step::Side) => {
                for p in ctx.ports() {
                    outbox.push(
                        p,
                        MstMsg::FragInfo {
                            frag: self.core.frag,
                            level: self.core.level,
                            attach: false,
                        },
                    );
                }
            }

            (UPCAST_MOE, Step::UpSend) => {
                let local = self.local_candidate(ctx).map(|(w, _)| w);
                let agg = min_opt(self.agg_moe, local);
                outbox.push(
                    self.core.parent.expect("UpSend implies a parent"),
                    MstMsg::UpMoe(agg),
                );
            }

            (BCAST_MOE, Step::DownSend) => {
                if self.core.is_root() {
                    // Fold own candidate, fix the fragment MOE, detect DONE.
                    let local = self.local_candidate(ctx);
                    self.frag_moe = min_opt(self.agg_moe, local.map(|(w, _)| w));
                    match self.frag_moe {
                        None => self.done = true,
                        Some(w) => {
                            if local.map(|(lw, _)| lw) == Some(w) {
                                self.moe_port = local.map(|(_, p)| p);
                            }
                        }
                    }
                }
                for &p in &self.core.children {
                    outbox.push(p, MstMsg::DownMoe(self.frag_moe));
                }
            }

            (COIN_BCAST, Step::DownSend) => {
                if self.core.is_root() {
                    self.coin_heads = !self.config.prune_with_coins
                        || self.rng.gen_bool(self.config.heads_probability);
                }
                for &p in &self.core.children {
                    outbox.push(p, MstMsg::DownCoin(self.coin_heads));
                }
            }

            (COIN_EXCHANGE, Step::Side) => {
                for p in ctx.ports() {
                    outbox.push(
                        p,
                        MstMsg::SideCoin {
                            heads: self.coin_heads,
                            over_moe: self.moe_port == Some(p),
                        },
                    );
                }
            }

            (UPCAST_VALIDITY, Step::UpSend) => {
                let own = if self.moe_port.is_some() {
                    self.valid_out
                } else {
                    None
                };
                outbox.push(
                    self.core.parent.expect("UpSend implies a parent"),
                    MstMsg::UpValid(own.or(self.agg_valid)),
                );
            }

            (BCAST_VALIDITY, Step::DownSend) => {
                if self.core.is_root() {
                    self.merging = self.root_validity();
                }
                for &p in &self.core.children {
                    outbox.push(p, MstMsg::DownMerging(self.merging));
                }
            }

            (MERGE_INFO, Step::Side) => {
                for p in ctx.ports() {
                    let attach = self.merging && self.moe_port == Some(p);
                    outbox.push(
                        p,
                        MstMsg::FragInfo {
                            frag: self.core.frag,
                            level: self.core.level,
                            attach,
                        },
                    );
                }
            }

            (MERGE_UP, Step::UpSend) => {
                if let Some((level, frag)) = self.core.new_vals {
                    outbox.push(
                        self.core.parent.expect("UpSend implies a parent"),
                        MstMsg::MergeVals { level, frag },
                    );
                }
            }

            (MERGE_DOWN, Step::DownSend) => {
                if let Some((level, frag)) = self.core.new_vals {
                    for &p in &self.core.children {
                        outbox.push(p, MstMsg::MergeVals { level, frag });
                    }
                }
            }

            // Pure listening steps send nothing.
            _ => {}
        }
    }

    fn deliver(&mut self, ctx: &NodeCtx, _round: Round, inbox: &[Envelope<MstMsg>]) -> NextWake {
        let (phase, block, offset, step) = self
            .next_step
            .take()
            .expect("deliver only at planned wakes");

        match (block, step) {
            (FRAG_ID_EXCHANGE, Step::Side) => {
                for env in inbox {
                    if let MstMsg::FragInfo { frag, level, .. } = env.msg {
                        self.core.nbr[env.port.index()] = Some((frag, level));
                    }
                }
            }

            (UPCAST_MOE, Step::UpReceive) => {
                for env in inbox {
                    if let MstMsg::UpMoe(w) = env.msg {
                        self.agg_moe = min_opt(self.agg_moe, w);
                    }
                }
            }

            (BCAST_MOE, Step::DownReceive) => {
                for env in inbox {
                    if let MstMsg::DownMoe(moe) = env.msg {
                        self.frag_moe = moe;
                        match moe {
                            None => self.done = true,
                            Some(w) => {
                                if let Some((lw, lp)) = self.local_candidate(ctx) {
                                    if lw == w {
                                        self.moe_port = Some(lp);
                                    }
                                }
                            }
                        }
                    }
                }
                // Leaves are finished with the broadcast: halt on DONE.
                if self.done && !self.core.has_children() {
                    return NextWake::Halt;
                }
            }
            (BCAST_MOE, Step::DownSend)
                // Root and internal nodes have now forwarded DONE.
                if self.done => {
                    return NextWake::Halt;
                }

            (COIN_BCAST, Step::DownReceive) => {
                for env in inbox {
                    if let MstMsg::DownCoin(heads) = env.msg {
                        self.coin_heads = heads;
                    }
                }
            }

            (COIN_EXCHANGE, Step::Side) => {
                for env in inbox {
                    if let MstMsg::SideCoin { heads, .. } = env.msg {
                        if self.moe_port == Some(env.port) {
                            // Our MOE is valid iff we are tails and the
                            // target fragment is heads (or pruning is off).
                            self.valid_out = Some(
                                !self.config.prune_with_coins || (!self.coin_heads && heads),
                            );
                        }
                    }
                }
            }

            (UPCAST_VALIDITY, Step::UpReceive) => {
                for env in inbox {
                    if let MstMsg::UpValid(v) = env.msg {
                        self.agg_valid = self.agg_valid.or(v);
                    }
                }
            }

            (BCAST_VALIDITY, Step::DownReceive) => {
                for env in inbox {
                    if let MstMsg::DownMerging(m) = env.msg {
                        self.merging = m;
                    }
                }
            }

            (MERGE_INFO, Step::Side) => {
                for env in inbox {
                    if let MstMsg::FragInfo { frag, level, attach } = env.msg {
                        if self.merging && self.moe_port == Some(env.port) {
                            // I am u_T: stage NEW-vals from u_H's info.
                            self.core.new_vals = Some((level + 1, frag));
                            self.core.new_parent = Some(env.port);
                            self.core.mst_ports[env.port.index()] = true;
                        }
                        if attach {
                            // I am u_H: the far fragment merges into mine.
                            self.core.mst_ports[env.port.index()] = true;
                            self.core.pending_children.push(env.port);
                        }
                    }
                }
            }

            (MERGE_UP, Step::UpReceive) => {
                for env in inbox {
                    if let MstMsg::MergeVals { level, frag } = env.msg {
                        if self.core.new_vals.is_none() {
                            self.core.new_vals = Some((level + 1, frag));
                            self.core.new_parent = Some(env.port);
                        }
                    }
                }
            }

            (MERGE_DOWN, Step::DownReceive) => {
                for env in inbox {
                    if let MstMsg::MergeVals { level, frag } = env.msg {
                        if self.core.new_vals.is_none() {
                            self.core.new_vals = Some((level + 1, frag));
                        }
                    }
                }
            }

            // Steps that only send.
            _ => {}
        }

        self.advance(phase, block, Some(offset), ctx.degree())
    }
}

fn min_opt(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ldt::check_forest;
    use graphlib::{generators, mst};
    use netsim::{SimConfig, Simulator};

    #[test]
    fn phase_labels_follow_the_block_layout() {
        let n = 5;
        let t = Timeline::new(n, BLOCKS_PER_PHASE);
        assert_eq!(phase_label(n, 0), "init");
        let labels = [
            "fragment-id-exchange",
            "upcast-moe",
            "bcast-moe",
            "coin-bcast",
            "coin-exchange",
            "upcast-validity",
            "bcast-validity",
            "merge-info",
            "merge-up",
            "merge-down",
        ];
        for (b, want) in labels.iter().enumerate() {
            assert_eq!(phase_label(n, t.block_start(0, b as u64)), *want);
            // Labels are periodic in the phase: phase 3 reads the same.
            assert_eq!(phase_label(n, t.block_start(3, b as u64)), *want);
            // Every offset of the block carries the block's label.
            assert_eq!(
                phase_label(n, t.block_start(0, b as u64) + t.block_len() - 1),
                *want
            );
        }
    }

    fn run(graph: &graphlib::WeightedGraph, seed: u64) -> netsim::RunOutcome<RandomizedMst> {
        Simulator::new(graph, SimConfig::default().with_seed(seed))
            .run(RandomizedMst::new)
            .expect("randomized MST run fails")
    }

    fn mst_edges(
        graph: &graphlib::WeightedGraph,
        states: &[RandomizedMst],
    ) -> Vec<graphlib::EdgeId> {
        let mut ids = std::collections::BTreeSet::new();
        for v in graph.nodes() {
            for (i, &marked) in states[v.index()].mst_ports().iter().enumerate() {
                if marked {
                    ids.insert(graph.port_entry(v, graphlib::Port::new(i as u32)).edge);
                }
            }
        }
        ids.into_iter().collect()
    }

    #[test]
    fn single_node_halts_after_one_awake_round() {
        let g = graphlib::GraphBuilder::new(1).build().unwrap();
        let out = run(&g, 0);
        assert_eq!(out.stats.awake_max(), 1);
        assert!(out.states[0].is_done());
    }

    #[test]
    fn two_nodes_pick_their_edge() {
        let g = graphlib::GraphBuilder::new(2)
            .edge(0, 1, 5)
            .build()
            .unwrap();
        let out = run(&g, 3);
        let edges = mst_edges(&g, &out.states);
        assert_eq!(edges.len(), 1);
        assert!(out.states.iter().all(RandomizedMst::is_done));
    }

    #[test]
    fn matches_kruskal_on_small_graphs() {
        for seed in 0..8 {
            let g = generators::random_connected(24, 0.2, seed).unwrap();
            let out = run(&g, seed * 7 + 1);
            let expected = mst::kruskal(&g);
            assert_eq!(mst_edges(&g, &out.states), expected.edges, "seed {seed}");
        }
    }

    #[test]
    fn matches_kruskal_on_rings_paths_grids() {
        let graphs = [
            generators::ring(17, 2).unwrap(),
            generators::path(23, 3).unwrap(),
            generators::grid(4, 6, 4).unwrap(),
            generators::complete(10, 5).unwrap(),
            generators::star(15, 6).unwrap(),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let out = run(g, 11 + i as u64);
            assert_eq!(
                mst_edges(g, &out.states),
                mst::kruskal(g).edges,
                "graph {i}"
            );
        }
    }

    #[test]
    fn both_endpoints_agree_on_every_mst_edge() {
        let g = generators::random_connected(30, 0.15, 9).unwrap();
        let out = run(&g, 1);
        for v in g.nodes() {
            for (i, &marked) in out.states[v.index()].mst_ports().iter().enumerate() {
                let entry = g.port_entry(v, graphlib::Port::new(i as u32));
                let back = g.port_to(entry.neighbor, v).unwrap();
                let far = out.states[entry.neighbor.index()].mst_ports()[back.index()];
                assert_eq!(marked, far, "edge {v}-{} disagrees", entry.neighbor);
            }
        }
    }

    #[test]
    fn ldt_invariant_holds_at_every_phase_boundary() {
        let g = generators::random_connected(20, 0.2, 5).unwrap();
        let timeline = Timeline::new(20, BLOCKS_PER_PHASE);
        let phase_len = timeline.phase_len();
        let mut checked = 0;
        let mut last_phase = 0;
        Simulator::new(&g, SimConfig::default().with_seed(2))
            .run_with_observer(RandomizedMst::new, |round, states: &[RandomizedMst]| {
                // Check right after the first active round of each phase
                // (phase-end updates were applied during planning).
                let phase = (round - 1) / phase_len;
                if phase > last_phase {
                    last_phase = phase;
                    let views: Vec<LdtView> = states.iter().map(|s| s.ldt_view()).collect();
                    check_forest(&g, &views).expect("FLDT invariant violated");
                    checked += 1;
                }
            })
            .unwrap();
        assert!(checked >= 1, "never crossed a phase boundary");
    }

    #[test]
    fn awake_complexity_is_logarithmic() {
        // O(1) awake rounds per phase and O(log n) phases: for n = 64 the
        // awake max should be far below, say, 60·log2(n).
        let g = generators::random_connected(64, 0.1, 3).unwrap();
        let out = run(&g, 4);
        let bound = 60.0 * (64f64).log2();
        assert!(
            (out.stats.awake_max() as f64) < bound,
            "awake {} exceeds {bound}",
            out.stats.awake_max()
        );
    }

    #[test]
    fn round_complexity_is_n_log_n_scale() {
        let g = generators::random_connected(48, 0.1, 8).unwrap();
        let out = run(&g, 4);
        let phase_len = Timeline::new(48, BLOCKS_PER_PHASE).phase_len();
        // Every run takes whole phases: rounds ≈ phases × 10(2n+1).
        let phases = out.states[0].phases();
        assert!(out.stats.rounds >= phases * phase_len);
        assert!(out.stats.rounds <= (phases + 1) * phase_len);
    }

    #[test]
    fn messages_respect_congest_limit() {
        let g = generators::random_connected(32, 0.2, 6).unwrap();
        // Generous c·log n budget: 8·log2(32·…) — the weights live in a
        // poly(n) space, so 8·⌈log2 n⌉ + 64 is a safe CONGEST envelope.
        let limit = 8 * 5 + 64;
        Simulator::new(&g, SimConfig::default().with_seed(7).with_bit_limit(limit))
            .run(RandomizedMst::new)
            .expect("a message exceeded the CONGEST limit");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::random_connected(20, 0.2, 1).unwrap();
        let a = run(&g, 42);
        let b = run(&g, 42);
        assert_eq!(a.stats, b.stats);
        assert_eq!(mst_edges(&g, &a.states), mst_edges(&g, &b.states));
    }

    #[test]
    fn disconnected_graph_builds_a_forest() {
        // Two triangles, no connection.
        let g = graphlib::GraphBuilder::new(6)
            .edge(0, 1, 1)
            .edge(1, 2, 2)
            .edge(0, 2, 3)
            .edge(3, 4, 4)
            .edge(4, 5, 5)
            .edge(3, 5, 6)
            .build()
            .unwrap();
        let out = run(&g, 2);
        let edges = mst_edges(&g, &out.states);
        assert_eq!(edges, mst::kruskal(&g).edges);
        assert_eq!(edges.len(), 4);
    }

    #[test]
    fn ablation_without_coin_pruning_breaks_merging() {
        // With pruning disabled, two singleton fragments each treat their
        // shared MOE as a valid merge edge, become each other's parent, and
        // never converge — the failure mode Step (i)'s restriction exists
        // to prevent. Bound the run and expect it to blow the budget (or,
        // if a lucky schedule escapes, at least not panic).
        let g = graphlib::GraphBuilder::new(2)
            .edge(0, 1, 5)
            .build()
            .unwrap();
        let result = std::panic::catch_unwind(|| {
            Simulator::new(&g, SimConfig::default().with_max_rounds(10_000)).run(|ctx| {
                RandomizedMst::with_config(
                    ctx,
                    RandomizedConfig {
                        heads_probability: 0.5,
                        prune_with_coins: false,
                        ..Default::default()
                    },
                )
            })
        });
        // Either the fragments swap ids forever (round budget), or the
        // forged levels outgrow n and trip the schedule's assertion.
        let broke = match result {
            Err(_) => true, // level assertion panicked
            Ok(Err(netsim::SimError::MaxRoundsExceeded { .. })) => true,
            Ok(other) => panic!("mutual merging unexpectedly converged: {other:?}"),
        };
        assert!(broke);
    }

    #[test]
    fn coin_bias_ablation_converges() {
        let g = generators::random_connected(16, 0.2, 3).unwrap();
        for bias in [0.2, 0.8] {
            let out = Simulator::new(&g, SimConfig::default().with_seed(5))
                .run(|ctx| {
                    RandomizedMst::with_config(
                        ctx,
                        RandomizedConfig {
                            heads_probability: bias,
                            prune_with_coins: true,
                            ..Default::default()
                        },
                    )
                })
                .unwrap();
            assert_eq!(
                mst_edges(&g, &out.states),
                mst::kruskal(&g).edges,
                "bias {bias}"
            );
        }
    }
}
