//! Awake-optimal distributed MST algorithms in the sleeping model.
//!
//! This crate implements the paper's primary contributions on top of the
//! [`netsim`] simulator:
//!
//! * [`randomized::RandomizedMst`] — Section 2.2's randomized algorithm:
//!   `O(log n)` awake complexity w.h.p., `O(n log n)` rounds;
//! * the LDT toolbox the algorithms are assembled from —
//!   [`schedule`] (`Transmission-Schedule`), [`timeline`] (the global block
//!   grid), and the block implementations inside the algorithm modules
//!   (`Fragment-Broadcast`, `Upcast-Min`, `Transmit-Adjacent`,
//!   `Merging-Fragments`);
//! * [`ldt`] — the Labeled Distance Tree invariant and its checker.
//!
//! The deterministic algorithm, the log\*-coloring variant, and the
//! always-awake baseline live in sibling modules ([`deterministic`],
//! [`deterministic::ColoringMode::ColeVishkin`], [`baseline`], [`prim`]).
//!
//! # Quickstart
//!
//! ```
//! use graphlib::{generators, mst};
//! use mst_core::runner::run_randomized;
//!
//! let graph = generators::random_connected(32, 0.2, 1)?;
//! let outcome = run_randomized(&graph, 7)?;
//! assert_eq!(outcome.edges, mst::kruskal(&graph).edges);
//! println!(
//!     "awake {} rounds, run time {} rounds",
//!     outcome.stats.awake_max(),
//!     outcome.stats.rounds
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fragment;

pub mod baseline;
pub mod deterministic;
pub mod exec;
pub mod ldt;
pub mod msg;
pub mod prim;
pub mod radio_toolbox;
pub mod randomized;
pub mod registry;
pub mod runner;
pub mod schedule;
pub mod timeline;
pub mod toolbox;
pub mod wire;

pub use exec::{round_budget, ExecOptions};
pub use registry::{AlgorithmSpec, ALGORITHMS};
pub use runner::{
    collect_mst_edges, parse_run_code, run_always_awake, run_always_awake_scratch,
    run_deterministic, run_deterministic_scratch, run_deterministic_with, run_logstar,
    run_logstar_scratch, run_prim, run_prim_scratch, run_randomized, run_randomized_scratch,
    run_randomized_with, run_spanning_tree, run_spanning_tree_scratch, MstCollectError, MstOutcome,
    MstScratch, RunError, RUN_ERROR_CODES,
};
