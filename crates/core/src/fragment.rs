//! Per-node fragment bookkeeping shared by both sleeping algorithms.

use std::collections::BTreeSet;

use graphlib::Port;
use netsim::NodeCtx;

use crate::ldt::LdtView;

/// What a node does at one planned wake inside a block: the five named
/// roles of the `Transmission-Schedule`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Step {
    /// `Side-Send-Receive`: simultaneous exchange with all neighbors.
    Side,
    /// `Down-Receive`: listen for the parent's downward message.
    DownReceive,
    /// `Down-Send`: forward downward to children (roots originate here).
    DownSend,
    /// `Up-Receive`: listen for the children's upward messages.
    UpReceive,
    /// `Up-Send`: forward upward to the parent.
    UpSend,
}

/// The LDT state of one node plus the per-phase scratch both algorithms
/// need: learned neighbor fragment info, merge staging variables
/// (NEW-LEVEL-NUM / NEW-FRAGMENT-ID of the paper), and the MST output
/// bits.
#[derive(Debug, Clone)]
pub(crate) struct FragmentCore {
    /// Fragment id = external id of the fragment root.
    pub frag: u64,
    /// Hop distance from the fragment root.
    pub level: u64,
    /// Port to parent (`None` at the root).
    pub parent: Option<Port>,
    /// Ports to children.
    pub children: BTreeSet<Port>,
    /// Per-port neighbor `(fragment, level)` learned this phase.
    pub nbr: Vec<Option<(u64, u64)>>,
    /// NEW-LEVEL-NUM and NEW-FRAGMENT-ID, staged during `Merging-Fragments`.
    pub new_vals: Option<(u64, u64)>,
    /// Pending re-orientation: the port that becomes the new parent.
    pub new_parent: Option<Port>,
    /// Ports that become children when the merge is applied (`u_H` side).
    pub pending_children: Vec<Port>,
    /// Output: `mst_ports[p]` is `true` once the edge behind port `p` is
    /// known to be an MST edge.
    pub mst_ports: Vec<bool>,
}

impl FragmentCore {
    /// Initial singleton-fragment state for a node.
    pub fn new(ctx: &NodeCtx) -> Self {
        FragmentCore {
            frag: ctx.external_id,
            level: 0,
            parent: None,
            children: BTreeSet::new(),
            nbr: vec![None; ctx.degree()],
            new_vals: None,
            new_parent: None,
            pending_children: Vec::new(),
            mst_ports: vec![false; ctx.degree()],
        }
    }

    pub fn is_root(&self) -> bool {
        self.parent.is_none()
    }

    pub fn has_children(&self) -> bool {
        !self.children.is_empty()
    }

    /// The node's local MOE candidate: its minimum-weight incident edge
    /// leaving the fragment, as `(weight, port)`. Requires the per-port
    /// neighbor info of the current phase.
    pub fn local_moe(&self, ctx: &NodeCtx) -> Option<(u64, Port)> {
        self.nbr
            .iter()
            .enumerate()
            .filter_map(|(i, info)| {
                let (frag, _) = (*info)?;
                (frag != self.frag).then(|| (ctx.port_weights[i], Port::new(i as u32)))
            })
            .min()
    }

    /// Applies the staged merge: adopts NEW-LEVEL-NUM / NEW-FRAGMENT-ID,
    /// re-orients parent/child pointers, and absorbs pending children.
    pub fn apply_merge(&mut self) {
        if let Some((level, frag)) = self.new_vals.take() {
            self.level = level;
            self.frag = frag;
            if let Some(np) = self.new_parent.take() {
                let old_parent = self.parent;
                self.children.remove(&np);
                self.parent = Some(np);
                if let Some(op) = old_parent {
                    self.children.insert(op);
                }
            }
        }
        self.new_parent = None;
        for p in self.pending_children.drain(..) {
            self.children.insert(p);
        }
    }

    /// Clears the per-phase neighbor table.
    pub fn clear_phase_scratch(&mut self) {
        self.nbr.iter_mut().for_each(|e| *e = None);
    }

    /// Snapshot for invariant checking.
    pub fn ldt_view(&self) -> LdtView {
        LdtView {
            fragment: self.frag,
            level: self.level,
            parent: self.parent,
            children: self.children.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::NodeId;

    fn ctx(degree: usize) -> NodeCtx {
        NodeCtx {
            node: NodeId::new(0),
            external_id: 1,
            n: 4,
            max_external_id: 4,
            port_weights: (1..=degree as u64)
                .map(|w| w * 10)
                .collect::<Vec<_>>()
                .into(),
            rng_seed: 0,
        }
    }

    #[test]
    fn local_moe_skips_same_fragment_ports() {
        let c = ctx(3);
        let mut f = FragmentCore::new(&c);
        f.nbr = vec![Some((1, 0)), Some((2, 0)), Some((9, 1))];
        // Port 0 is inside the fragment (frag 1 == ours), ports 1 and 2
        // leave it; port 1 is cheaper (weight 20 < 30).
        assert_eq!(f.local_moe(&c), Some((20, Port::new(1))));
    }

    #[test]
    fn local_moe_none_when_isolated_or_unlearned() {
        let c = ctx(2);
        let f = FragmentCore::new(&c);
        assert_eq!(f.local_moe(&c), None);
    }

    #[test]
    fn apply_merge_reorients_ut() {
        // u_T with old parent on port 0, child on port 1, MOE on port 2.
        let c = ctx(3);
        let mut f = FragmentCore::new(&c);
        f.parent = Some(Port::new(0));
        f.level = 3;
        f.children.insert(Port::new(1));
        f.new_vals = Some((5, 77));
        f.new_parent = Some(Port::new(2));
        f.apply_merge();
        assert_eq!((f.level, f.frag), (5, 77));
        assert_eq!(f.parent, Some(Port::new(2)));
        // Old parent demoted to child; old child kept.
        assert!(f.children.contains(&Port::new(0)));
        assert!(f.children.contains(&Port::new(1)));
        assert!(!f.children.contains(&Port::new(2)));
    }

    #[test]
    fn apply_merge_path_node_demotes_child() {
        // Path node: values arrived from child on port 1.
        let c = ctx(3);
        let mut f = FragmentCore::new(&c);
        f.parent = Some(Port::new(0));
        f.level = 2;
        f.children.insert(Port::new(1));
        f.children.insert(Port::new(2));
        f.new_vals = Some((6, 77));
        f.new_parent = Some(Port::new(1));
        f.apply_merge();
        assert_eq!(f.parent, Some(Port::new(1)));
        let expect: BTreeSet<Port> = [Port::new(0), Port::new(2)].into_iter().collect();
        assert_eq!(f.children, expect);
    }

    #[test]
    fn apply_merge_off_path_keeps_orientation() {
        let c = ctx(2);
        let mut f = FragmentCore::new(&c);
        f.parent = Some(Port::new(0));
        f.level = 4;
        f.new_vals = Some((9, 77));
        f.apply_merge();
        assert_eq!(f.parent, Some(Port::new(0)));
        assert_eq!((f.level, f.frag), (9, 77));
    }

    #[test]
    fn apply_merge_absorbs_pending_children() {
        let c = ctx(2);
        let mut f = FragmentCore::new(&c);
        f.pending_children = vec![Port::new(1)];
        f.apply_merge();
        assert!(f.children.contains(&Port::new(1)));
        assert!(f.pending_children.is_empty());
    }
}
