//! Labeled Distance Trees: the structural invariant both algorithms
//! maintain between phases.
//!
//! A **Labeled Distance Tree (LDT)** is a rooted spanning tree of a
//! fragment in which every node knows (a) its fragment id — the external
//! id of the root, (b) its hop distance from the root, and (c) which of
//! its ports lead to its parent and children. A **Forest of LDTs (FLDT)**
//! partitions the whole graph. [`check_forest`] verifies the invariant
//! globally and is run at phase boundaries by the test suites.

use std::collections::BTreeSet;

use graphlib::{Port, WeightedGraph};

/// A read-only snapshot of one node's LDT bookkeeping, extracted from a
/// protocol state for invariant checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LdtView {
    /// Fragment id (external id of the fragment root).
    pub fragment: u64,
    /// Hop distance from the fragment root.
    pub level: u64,
    /// Port leading to the parent (`None` at the root).
    pub parent: Option<Port>,
    /// Ports leading to children.
    pub children: BTreeSet<Port>,
}

impl LdtView {
    /// `true` if this node believes it is a fragment root.
    pub fn is_root(&self) -> bool {
        self.parent.is_none()
    }
}

/// Verifies the FLDT invariant over the whole graph.
///
/// Checks, for every node `v` with view `w`:
///
/// 1. root iff `level == 0`, and a root's fragment id is its own external id;
/// 2. parent/child pointers are symmetric across each tree edge;
/// 3. a child's level is its parent's level plus one;
/// 4. both endpoints of a tree edge agree on the fragment id;
/// 5. each fragment has exactly one root (no cycles, counted via edges).
///
/// # Errors
///
/// Returns a human-readable description of the first violated condition.
pub fn check_forest(graph: &WeightedGraph, views: &[LdtView]) -> Result<(), String> {
    let n = graph.node_count();
    if views.len() != n {
        return Err(format!("expected {n} views, got {}", views.len()));
    }

    let mut tree_edges = 0usize;
    let mut roots_per_fragment = std::collections::BTreeMap::new();

    for v in graph.nodes() {
        let w = &views[v.index()];
        if w.is_root() {
            if w.level != 0 {
                return Err(format!("{v} is a root but has level {}", w.level));
            }
            if w.fragment != graph.external_id(v) {
                return Err(format!(
                    "{v} is a root but its fragment id {} is not its external id {}",
                    w.fragment,
                    graph.external_id(v)
                ));
            }
            *roots_per_fragment.entry(w.fragment).or_insert(0usize) += 1;
        } else if w.level == 0 {
            return Err(format!("{v} has level 0 but a parent"));
        }

        if let Some(p) = w.parent {
            if p.index() >= graph.degree(v) {
                return Err(format!("{v} parent port {p} out of range"));
            }
            if w.children.contains(&p) {
                return Err(format!("{v} lists port {p} as both parent and child"));
            }
            let parent_node = graph.port_entry(v, p).neighbor;
            let pw = &views[parent_node.index()];
            let Some(back) = graph.port_to(parent_node, v) else {
                return Err(format!(
                    "adjacency is not symmetric between {parent_node} and {v}"
                ));
            };
            if !pw.children.contains(&back) {
                return Err(format!("{parent_node} does not list {v} as a child"));
            }
            if pw.level + 1 != w.level {
                return Err(format!(
                    "{v} level {} is not parent {parent_node} level {} + 1",
                    w.level, pw.level
                ));
            }
            if pw.fragment != w.fragment {
                return Err(format!(
                    "{v} fragment {} differs from parent {parent_node} fragment {}",
                    w.fragment, pw.fragment
                ));
            }
            tree_edges += 1;
        }

        for &c in &w.children {
            if c.index() >= graph.degree(v) {
                return Err(format!("{v} child port {c} out of range"));
            }
            let child_node = graph.port_entry(v, c).neighbor;
            let cw = &views[child_node.index()];
            let Some(back) = graph.port_to(child_node, v) else {
                return Err(format!(
                    "adjacency is not symmetric between {child_node} and {v}"
                ));
            };
            if cw.parent != Some(back) {
                return Err(format!("{child_node} does not list {v} as its parent"));
            }
        }
    }

    // Each fragment with k nodes contributes k-1 parent edges and 1 root.
    let fragments: BTreeSet<u64> = views.iter().map(|w| w.fragment).collect();
    for f in &fragments {
        match roots_per_fragment.get(f) {
            Some(1) => {}
            Some(k) => return Err(format!("fragment {f} has {k} roots")),
            None => return Err(format!("fragment {f} has no root")),
        }
    }
    let node_total = views.len();
    if tree_edges + fragments.len() != node_total {
        return Err(format!(
            "forest accounting broken: {tree_edges} tree edges + {} fragments != {node_total} nodes",
            fragments.len()
        ));
    }
    Ok(())
}

/// Number of distinct fragments in a forest snapshot.
pub fn fragment_count(views: &[LdtView]) -> usize {
    views
        .iter()
        .map(|w| w.fragment)
        .collect::<BTreeSet<u64>>()
        .len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::GraphBuilder;

    fn path3() -> WeightedGraph {
        GraphBuilder::new(3)
            .edge(0, 1, 1)
            .edge(1, 2, 2)
            .build()
            .unwrap()
    }

    fn singleton_views(graph: &WeightedGraph) -> Vec<LdtView> {
        graph
            .nodes()
            .map(|v| LdtView {
                fragment: graph.external_id(v),
                level: 0,
                parent: None,
                children: BTreeSet::new(),
            })
            .collect()
    }

    #[test]
    fn initial_singleton_forest_is_valid() {
        let g = path3();
        assert_eq!(check_forest(&g, &singleton_views(&g)), Ok(()));
        assert_eq!(fragment_count(&singleton_views(&g)), 3);
    }

    #[test]
    fn valid_single_tree() {
        // Root node 1 (external id 2); children 0 and 2.
        let g = path3();
        let views = vec![
            LdtView {
                fragment: 2,
                level: 1,
                parent: Some(Port::new(0)),
                children: BTreeSet::new(),
            },
            LdtView {
                fragment: 2,
                level: 0,
                parent: None,
                children: [Port::new(0), Port::new(1)].into_iter().collect(),
            },
            LdtView {
                fragment: 2,
                level: 1,
                parent: Some(Port::new(0)),
                children: BTreeSet::new(),
            },
        ];
        assert_eq!(check_forest(&g, &views), Ok(()));
        assert_eq!(fragment_count(&views), 1);
    }

    #[test]
    fn detects_level_mismatch() {
        let g = path3();
        let views = vec![
            LdtView {
                fragment: 2,
                level: 2,
                parent: Some(Port::new(0)),
                children: BTreeSet::new(),
            },
            LdtView {
                fragment: 2,
                level: 0,
                parent: None,
                children: [Port::new(0), Port::new(1)].into_iter().collect(),
            },
            LdtView {
                fragment: 2,
                level: 1,
                parent: Some(Port::new(0)),
                children: BTreeSet::new(),
            },
        ];
        let err = check_forest(&g, &views).unwrap_err();
        assert!(err.contains("level"), "{err}");
    }

    #[test]
    fn detects_asymmetric_pointers() {
        let g = path3();
        let views = vec![
            // Node 0 claims node 1 as parent, but node 1 has no children.
            LdtView {
                fragment: 2,
                level: 1,
                parent: Some(Port::new(0)),
                children: BTreeSet::new(),
            },
            LdtView {
                fragment: 2,
                level: 0,
                parent: None,
                children: BTreeSet::new(),
            },
            LdtView {
                fragment: 2,
                level: 1,
                parent: Some(Port::new(0)),
                children: BTreeSet::new(),
            },
        ];
        let err = check_forest(&g, &views).unwrap_err();
        assert!(err.contains("child"), "{err}");
    }

    #[test]
    fn detects_wrong_root_fragment_id() {
        let g = path3();
        let mut views = singleton_views(&g);
        views[0].fragment = 99;
        let err = check_forest(&g, &views).unwrap_err();
        assert!(err.contains("external id"), "{err}");
    }

    #[test]
    fn detects_missing_root() {
        let g = path3();
        let mut views = singleton_views(&g);
        // Node 0 joins fragment 2 without any tree edge: fragment 1 loses
        // its root and the edge accounting breaks.
        views[0].fragment = 2;
        views[0].level = 1;
        views[0].parent = Some(Port::new(0));
        let err = check_forest(&g, &views).unwrap_err();
        assert!(err.contains("child") || err.contains("root"), "{err}");
    }

    #[test]
    fn detects_fragment_disagreement_across_tree_edge() {
        let g = path3();
        let views = vec![
            LdtView {
                fragment: 7,
                level: 1,
                parent: Some(Port::new(0)),
                children: BTreeSet::new(),
            },
            LdtView {
                fragment: 2,
                level: 0,
                parent: None,
                children: [Port::new(0), Port::new(1)].into_iter().collect(),
            },
            LdtView {
                fragment: 2,
                level: 1,
                parent: Some(Port::new(0)),
                children: BTreeSet::new(),
            },
        ];
        let err = check_forest(&g, &views).unwrap_err();
        assert!(err.contains("fragment"), "{err}");
    }
}
