//! Always-awake baselines: the traditional-model comparators.
//!
//! In the traditional CONGEST model a node is active for the entire run,
//! so its awake complexity *is* the round complexity. [`AlwaysAwake`]
//! wraps any sleeping protocol and keeps the node awake in every round
//! until the wrapped protocol halts, which models exactly that cost
//! profile while reusing the same algorithm logic — the comparison in the
//! awake-vs-round trade-off benches (Theorem 4) is then apples-to-apples:
//! identical messages and rounds, maximal awake cost.
//!
//! [`GhsAlwaysAwake`] is the concrete baseline used in the paper-shaped
//! experiments: GHS-style MST (our randomized variant) with the sleeping
//! optimization disabled.

use netsim::{Envelope, NextWake, NodeCtx, Outbox, Protocol, Round};

use crate::randomized::RandomizedMst;

/// Wraps a sleeping protocol and stays awake every round until it halts.
///
/// Rounds the inner protocol would have slept through become awake no-ops
/// (no sends, inbox discarded — the schedule guarantees nothing addressed
/// to the node arrives in those rounds anyway).
#[derive(Debug, Clone)]
pub struct AlwaysAwake<P> {
    inner: P,
    /// The inner protocol's next scheduled activity.
    inner_wake: Option<Round>,
}

impl<P> AlwaysAwake<P> {
    /// Wraps `inner`.
    pub fn new(inner: P) -> Self {
        AlwaysAwake {
            inner,
            inner_wake: None,
        }
    }

    /// Read access to the wrapped protocol state.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Protocol> Protocol for AlwaysAwake<P> {
    type Msg = P::Msg;

    fn init(&mut self, ctx: &NodeCtx) -> NextWake {
        match self.inner.init(ctx) {
            NextWake::Halt => NextWake::Halt,
            NextWake::At(r) => {
                self.inner_wake = Some(r);
                NextWake::At(1)
            }
        }
    }

    fn send(&mut self, ctx: &NodeCtx, round: Round, outbox: &mut Outbox<P::Msg>) {
        if self.inner_wake == Some(round) {
            self.inner.send(ctx, round, outbox);
        }
    }

    fn deliver(&mut self, ctx: &NodeCtx, round: Round, inbox: &[Envelope<P::Msg>]) -> NextWake {
        if self.inner_wake == Some(round) {
            match self.inner.deliver(ctx, round, inbox) {
                NextWake::Halt => return NextWake::Halt,
                NextWake::At(r) => self.inner_wake = Some(r),
            }
        }
        NextWake::At(round + 1)
    }
}

/// The GHS-style always-awake MST baseline: the merging logic of
/// [`RandomizedMst`] with every node awake for the whole run.
pub type GhsAlwaysAwake = AlwaysAwake<RandomizedMst>;

/// Convenience constructor matching the simulator factory signature.
pub fn ghs_always_awake(ctx: &NodeCtx) -> GhsAlwaysAwake {
    AlwaysAwake::new(RandomizedMst::new(ctx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::collect_mst_edges;
    use graphlib::{generators, mst};
    use netsim::{SimConfig, Simulator};

    #[test]
    fn baseline_computes_the_same_mst() {
        let g = generators::random_connected(20, 0.2, 3).unwrap();
        let out = Simulator::new(&g, SimConfig::default().with_seed(5))
            .run(ghs_always_awake)
            .unwrap();
        let edges = collect_mst_edges(&g, &out.states, |s| s.inner().mst_ports()).unwrap();
        assert_eq!(edges, mst::kruskal(&g).edges);
    }

    #[test]
    fn baseline_awake_equals_rounds_for_the_last_node() {
        let g = generators::ring(12, 7).unwrap();
        let out = Simulator::new(&g, SimConfig::default().with_seed(2))
            .run(ghs_always_awake)
            .unwrap();
        // Some node is awake from round 1 to the very end.
        assert_eq!(out.stats.awake_max(), out.stats.rounds);
    }

    #[test]
    fn baseline_is_far_more_awake_than_sleeping_version() {
        let g = generators::random_connected(32, 0.1, 9).unwrap();
        let sleeping = Simulator::new(&g, SimConfig::default().with_seed(1))
            .run(RandomizedMst::new)
            .unwrap();
        let awake = Simulator::new(&g, SimConfig::default().with_seed(1))
            .run(ghs_always_awake)
            .unwrap();
        // Identical seeds → identical coin flips → identical rounds.
        assert_eq!(sleeping.stats.rounds, awake.stats.rounds);
        assert!(awake.stats.awake_max() > 20 * sleeping.stats.awake_max());
    }

    #[test]
    fn sleeping_runs_lose_no_messages() {
        // The transmission schedule guarantees every message finds its
        // receiver awake; the baseline must not change deliveries either.
        let g = generators::random_connected(24, 0.2, 4).unwrap();
        let sleeping = Simulator::new(&g, SimConfig::default().with_seed(8))
            .run(RandomizedMst::new)
            .unwrap();
        assert_eq!(sleeping.stats.messages_lost, 0);
        let awake = Simulator::new(&g, SimConfig::default().with_seed(8))
            .run(ghs_always_awake)
            .unwrap();
        assert_eq!(
            awake.stats.messages_delivered,
            sleeping.stats.messages_delivered
        );
    }
}
