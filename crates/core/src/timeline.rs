//! Global round arithmetic: phases, blocks, offsets.
//!
//! Both sleeping algorithms run on a *global block timeline*: round 1
//! starts phase 0, block 0, offset 0; each block is [`block_len`] rounds;
//! each phase is a fixed number of blocks. Because every node knows `n`
//! (and `N`), every node derives the same timeline locally, which is what
//! lets sleeping nodes re-synchronize purely from the round number.

use netsim::Round;

use crate::schedule::block_len;

/// Position of a round on the block timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Position {
    /// Phase index (0-based).
    pub phase: u64,
    /// Block index within the phase (0-based).
    pub block: u64,
    /// Offset within the block (0-based, `< block_len`).
    pub offset: u64,
}

/// The timeline geometry of one algorithm on an `n`-node network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timeline {
    n: usize,
    blocks_per_phase: u64,
}

impl Timeline {
    /// Creates a timeline with the given number of blocks per phase.
    ///
    /// # Panics
    ///
    /// Panics if `blocks_per_phase` is zero.
    pub fn new(n: usize, blocks_per_phase: u64) -> Self {
        assert!(blocks_per_phase > 0, "a phase needs at least one block");
        Timeline {
            n,
            blocks_per_phase,
        }
    }

    /// Network size this timeline was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rounds per block (`2n + 1`).
    pub fn block_len(&self) -> u64 {
        block_len(self.n)
    }

    /// Blocks per phase.
    pub fn blocks_per_phase(&self) -> u64 {
        self.blocks_per_phase
    }

    /// Rounds per phase.
    pub fn phase_len(&self) -> u64 {
        self.blocks_per_phase * self.block_len()
    }

    /// Maps a 1-based round number to its position.
    ///
    /// # Panics
    ///
    /// Panics if `round == 0` (rounds are numbered from 1).
    pub fn position(&self, round: Round) -> Position {
        assert!(round > 0, "rounds are numbered from 1");
        let z = round - 1;
        let phase = z / self.phase_len();
        let in_phase = z % self.phase_len();
        Position {
            phase,
            block: in_phase / self.block_len(),
            offset: in_phase % self.block_len(),
        }
    }

    /// Maps a position back to its 1-based round number.
    pub fn round(&self, pos: Position) -> Round {
        1 + pos.phase * self.phase_len() + pos.block * self.block_len() + pos.offset
    }

    /// First round of a given (phase, block).
    pub fn block_start(&self, phase: u64, block: u64) -> Round {
        self.round(Position {
            phase,
            block,
            offset: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_position_roundtrip() {
        let t = Timeline::new(5, 7); // block_len 11, phase_len 77
        for round in 1..500 {
            let pos = t.position(round);
            assert_eq!(t.round(pos), round);
            assert!(pos.offset < t.block_len());
            assert!(pos.block < t.blocks_per_phase());
        }
    }

    #[test]
    fn known_positions() {
        let t = Timeline::new(5, 3); // block_len 11, phase 33
        assert_eq!(
            t.position(1),
            Position {
                phase: 0,
                block: 0,
                offset: 0
            }
        );
        assert_eq!(
            t.position(11),
            Position {
                phase: 0,
                block: 0,
                offset: 10
            }
        );
        assert_eq!(
            t.position(12),
            Position {
                phase: 0,
                block: 1,
                offset: 0
            }
        );
        assert_eq!(
            t.position(34),
            Position {
                phase: 1,
                block: 0,
                offset: 0
            }
        );
        assert_eq!(t.block_start(1, 2), 1 + 33 + 22);
    }

    #[test]
    fn single_node_timeline_geometry() {
        // n = 1 is the smallest legal network: block_len 3, and the
        // whole schedule still cycles correctly.
        let t = Timeline::new(1, 4);
        assert_eq!(t.block_len(), 3);
        assert_eq!(t.phase_len(), 12);
        assert_eq!(
            t.position(3),
            Position {
                phase: 0,
                block: 0,
                offset: 2
            }
        );
        assert_eq!(
            t.position(4),
            Position {
                phase: 0,
                block: 1,
                offset: 0
            }
        );
        assert_eq!(
            t.position(13),
            Position {
                phase: 1,
                block: 0,
                offset: 0
            }
        );
        for round in 1..100 {
            assert_eq!(t.round(t.position(round)), round);
        }
    }

    #[test]
    fn zero_node_timeline_degenerates_to_unit_blocks() {
        // n = 0 gives block_len 1: every round is its own block, offsets
        // are always 0, and the roundtrip still holds.
        let t = Timeline::new(0, 2);
        assert_eq!(t.block_len(), 1);
        for round in 1..10 {
            let pos = t.position(round);
            assert_eq!(pos.offset, 0);
            assert_eq!(t.round(pos), round);
        }
        assert_eq!(
            t.position(3),
            Position {
                phase: 1,
                block: 0,
                offset: 0
            }
        );
    }

    #[test]
    fn far_future_rounds_do_not_overflow() {
        // The deterministic algorithm's phase counts scale with N, so
        // positions must stay exact deep into the u64 range.
        let t = Timeline::new(1_000, 16);
        let round = 1_000_000_000_000_000_000u64;
        let pos = t.position(round);
        assert_eq!(t.round(pos), round);
        assert!(pos.offset < t.block_len());
        assert!(pos.block < t.blocks_per_phase());
    }

    #[test]
    fn block_starts_advance_by_block_len() {
        let t = Timeline::new(6, 5); // block_len 13
        for phase in 0..3 {
            for block in 0..5 {
                let start = t.block_start(phase, block);
                assert_eq!(
                    t.position(start),
                    Position {
                        phase,
                        block,
                        offset: 0
                    }
                );
                assert_eq!(t.block_start(phase, block + 1) - start, t.block_len());
            }
        }
    }

    #[test]
    #[should_panic(expected = "numbered from 1")]
    fn round_zero_rejected() {
        Timeline::new(5, 3).position(0);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_rejected() {
        Timeline::new(5, 0);
    }
}
