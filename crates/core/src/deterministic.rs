//! `Deterministic-MST` (Section 2.3): the awake-optimal deterministic
//! algorithm.
//!
//! The randomized algorithm's coin flips are replaced by two deterministic
//! mechanisms:
//!
//! 1. **MOE sparsification (step (i))** — every fragment selects at most
//!    three of its *incoming* MOEs as valid (a token distribution from the
//!    root caps the count), and its own outgoing MOE is valid only if the
//!    target fragment selected it. The pruned supergraph `G'` therefore
//!    has maximum degree 4 (≤ 3 in + 1 out).
//! 2. **`Fast-Awake-Coloring(n, N)` (step (ii))** — fragments greedily
//!    5-color `G'` in fragment-id order over `N` stages; a fragment and
//!    its ≤ 4 neighbors participate in at most 5 stages, so coloring costs
//!    `O(1)` awake rounds but `O(nN)` running time — the source of the
//!    algorithm's `O(nN log n)` round complexity.
//!
//! Blue fragments (the highest-priority color) merge into an arbitrary
//! `G'` neighbor; blue fragments with no `G'` neighbors ("singletons")
//! merge along their original MOE after a refresh exchange. Lemma 4 shows
//! blue fragments are ≥ a constant fraction in every large component, so
//! the fragment count decays geometrically.
//!
//! ## Phase layout (blocks on the global timeline)
//!
//! | block | name | purpose |
//! |---|---|---|
//! | 0 | `FragIdExchange` | learn neighbor (fragment, level) |
//! | 1 | `UpcastMoe` | fragment MOE to root |
//! | 2 | `BcastMoe` | MOE to all; `None` ⇒ DONE, halt |
//! | 3 | `MoeFlagExchange` | discover incoming MOEs |
//! | 4 | `UpCount` | count incoming-MOE edges per subtree |
//! | 5 | `TokenDown` | distribute ≤ 3 validity tokens |
//! | 6 | `ValidNotify` | tell MOE sources their verdict |
//! | 7 | `UpNbrs` | union NBR-INFO to root |
//! | 8 | `BcastNbrs` | NBR-INFO to all |
//! | 9 … 9+3N−1 | `Coloring` stage `s`, sub 0/1/2 | announce / upcast / broadcast colors |
//! | 9+3N | `MergeInfo1` | attach notices for blue-with-neighbor merges |
//! | 10+3N | `MergeUp1` | NEW-vals sweep to old roots |
//! | 11+3N | `MergeDown1` | NEW-vals sweep to off-path nodes (then apply) |
//! | 12+3N | `MergeInfo2` | refresh + singleton attach notices |
//! | 13+3N | `MergeUp2` | singleton sweep up |
//! | 14+3N | `MergeDown2` | singleton sweep down (apply at phase end) |

use std::collections::BTreeMap;

use graphlib::Port;
use netsim::{Envelope, NextWake, NodeCtx, Outbox, Protocol, Round};

use crate::fragment::{FragmentCore, Step};
use crate::ldt::LdtView;
use crate::msg::{Color, Dir, MstMsg, NbrSet};
use crate::schedule::ts_offsets;
use crate::timeline::{Position, Timeline};

const FRAG_ID_EXCHANGE: u64 = 0;
const UPCAST_MOE: u64 = 1;
const BCAST_MOE: u64 = 2;
const MOE_FLAG_EXCHANGE: u64 = 3;
const UP_COUNT: u64 = 4;
const TOKEN_DOWN: u64 = 5;
const VALID_NOTIFY: u64 = 6;
const UP_NBRS: u64 = 7;
const BCAST_NBRS: u64 = 8;
const COLORING_START: u64 = 9;

/// Which coloring procedure step (ii) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColoringMode {
    /// The paper's `Fast-Awake-Coloring(n, N)`: `N` id-indexed stages,
    /// `O(1)` awake, `O(nN)` rounds per phase.
    #[default]
    FastAwake,
    /// Corollary 1's replacement: Cole–Vishkin color reduction on the
    /// MOE pseudo-forest, `O(log* N)` awake and `O(n log* N)` rounds per
    /// phase — trading a `log*` factor of awake time for an `N/log*`
    /// factor of run time.
    ColeVishkin,
}

/// Tunables for ablations and variants. [`DeterministicConfig::default`]
/// reproduces the paper (token cap 3, `Fast-Awake-Coloring`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterministicConfig {
    /// Maximum number of incoming MOEs a fragment declares valid
    /// (paper: 3, giving `G'` maximum degree 4). Values above 3 violate
    /// the NBR-INFO capacity and five-color palette, which are sized for
    /// degree `cap + 1 = 4`, and will panic — the cap is structural, not
    /// just a tuning knob.
    pub token_cap: u64,
    /// Coloring procedure (paper's default, or the Corollary 1 variant).
    pub coloring: ColoringMode,
}

impl Default for DeterministicConfig {
    fn default() -> Self {
        DeterministicConfig {
            token_cap: 3,
            coloring: ColoringMode::FastAwake,
        }
    }
}

/// Number of Cole–Vishkin iterations needed to reduce colors in `[1, N]`
/// to at most six (values `0..=5`): the bit-width recurrence
/// `b ← ⌈log₂(2(b−1)+1+1)⌉` iterated to 3 bits, plus one final step.
/// Grows like `log* N` (it is `O(log* N)` plus the constant tail).
pub fn cv_iterations(id_bound: u64) -> u64 {
    let mut b = netsim::bits_for_value(id_bound) as u64;
    let mut t = 0;
    while b > 3 {
        b = netsim::bits_for_value(2 * (b - 1) + 1) as u64;
        t += 1;
    }
    t + 1
}

/// The phase label of `round` in `Deterministic-MST`'s block schedule:
/// the nine controlled-merge preparation blocks, the coloring window
/// (whose width depends on the id bound `N` and the `coloring` mode —
/// pass the graph's `max_external_id` and the run's
/// [`DeterministicConfig::coloring`]), and the two trailing
/// `Merging-Fragments` invocations. Backs the observability plane's
/// [`phase_spans`](netsim::Metrics::phase_spans); total — never panics.
pub fn phase_label(n: usize, id_bound: u64, coloring: ColoringMode, round: Round) -> &'static str {
    if round == 0 {
        return "init";
    }
    let coloring_blocks = match coloring {
        ColoringMode::FastAwake => 3 * id_bound,
        ColoringMode::ColeVishkin => 3 * (cv_iterations(id_bound) + 8),
    };
    let timeline = Timeline::new(n, 9 + coloring_blocks + 6);
    let block = timeline.position(round).block;
    match block {
        FRAG_ID_EXCHANGE => "fragment-id-exchange",
        UPCAST_MOE => "upcast-moe",
        BCAST_MOE => "bcast-moe",
        MOE_FLAG_EXCHANGE => "moe-flag-exchange",
        UP_COUNT => "up-count",
        TOKEN_DOWN => "token-down",
        VALID_NOTIFY => "valid-notify",
        UP_NBRS => "upcast-neighbors",
        BCAST_NBRS => "bcast-neighbors",
        b if (COLORING_START..COLORING_START + coloring_blocks).contains(&b) => "coloring",
        b => match b - (COLORING_START + coloring_blocks) {
            0 | 3 => "merge-info",
            1 | 4 => "merge-up",
            2 | 5 => "merge-down",
            _ => "out-of-schedule",
        },
    }
}

/// One Cole–Vishkin step: the new color is `2i + bit_i(mine)` where `i` is
/// the lowest bit position where `mine` and `parent` differ.
fn cv_step(mine: u64, parent: u64) -> u64 {
    debug_assert_ne!(
        mine, parent,
        "CV requires a proper coloring along parent links"
    );
    let i = u64::from((mine ^ parent).trailing_zeros());
    2 * i + ((mine >> i) & 1)
}

/// Bit index of a palette color in the 5-bit masks.
fn color_bit(c: Color) -> u8 {
    1 << Color::PALETTE
        .iter()
        .position(|&x| x == c)
        .expect("palette color")
}

/// The colors present in a 5-bit mask.
fn mask_colors(mask: u8) -> Vec<Color> {
    Color::PALETTE
        .iter()
        .copied()
        .filter(|&c| mask & color_bit(c) != 0)
        .collect()
}

/// Per-node state of `Deterministic-MST`. Implements [`netsim::Protocol`].
#[derive(Debug, Clone)]
pub struct DeterministicMst {
    timeline: Timeline,
    core: FragmentCore,
    /// The id bound `N`: number of coloring stages.
    id_bound: u64,
    config: DeterministicConfig,

    // --- step (i) scratch ---
    agg_moe: Option<u64>,
    frag_moe: Option<u64>,
    /// `Some(port)` iff this node is the fragment's outgoing-MOE endpoint.
    moe_port: Option<Port>,
    /// Ports carrying an incoming MOE this phase (ascending).
    in_moe_ports: Vec<Port>,
    /// Incoming-MOE edge counts reported by each child subtree.
    child_counts: BTreeMap<Port, u64>,
    /// Token allocations to forward to children.
    child_tokens: BTreeMap<Port, u64>,
    /// The incoming MOEs this node selected as valid.
    valid_in_ports: Vec<Port>,
    /// At the outgoing-MOE endpoint: did the target select our MOE?
    out_valid: Option<bool>,
    /// NBR-INFO union aggregated from children.
    agg_nbrs: NbrSet,
    /// Final fragment NBR-INFO after `BcastNbrs`.
    nbr_info: NbrSet,

    // --- coloring scratch (Fast-Awake-Coloring mode) ---
    /// Colors of neighbor fragments, keyed by fragment id.
    nbr_colors: BTreeMap<u64, Color>,
    /// Color received from the staged fragment this stage: (stage, color).
    stage_recv: Option<(u64, Color)>,
    /// Color aggregated up the tree this stage: (stage, color).
    stage_agg: Option<(u64, Color)>,

    // --- coloring scratch (Cole–Vishkin mode) ---
    /// Does this fragment have a CV parent (a valid outgoing MOE that is
    /// not the dropped side of a shared-edge 2-cycle)?
    cv_has_parent: bool,
    /// Current CV color (parent-fragments only; root fragments derive
    /// theirs lazily).
    cv_color: u64,
    /// Number of CV updates applied to `cv_color`.
    cv_iter: u64,
    /// Parent color received this iteration triple: (triple, color).
    cv_recv: Option<(u64, u64)>,
    /// Parent color aggregated up the tree this triple: (triple, color).
    cv_agg: Option<(u64, u64)>,
    /// Has-parent verdict aggregated up the tree (prep triple).
    cv_flag_agg: Option<bool>,
    /// Per-port CV class of the `G'` neighbor behind each port.
    nbr_cv_color_by_port: Vec<Option<u64>>,
    /// 6-bit mask of neighbor CV classes (fragment-wide).
    nbr_cv_mask: u8,
    /// 5-bit mask of neighbors' *final* colors accumulated so far.
    final_nbr_mask: u8,
    /// Mask scratch for the current triple: (triple, mask).
    mask_recv: Option<(u64, u8)>,
    /// Upward mask aggregate for the current triple: (triple, mask).
    mask_agg: Option<(u64, u8)>,
    /// Downward value being forwarded this triple: (triple, word).
    cv_bcast: Option<(u64, u64)>,
    /// Downward mask being forwarded this triple: (triple, mask).
    mask_bcast: Option<(u64, u8)>,
    /// This fragment's final color (CV mode).
    final_color: Option<Color>,

    // --- merging scratch ---
    /// Blue with `G'` neighbors: merges in the first `Merging-Fragments`.
    merging1: bool,
    /// Singleton blue: merges in the second `Merging-Fragments`.
    merging2: bool,
    /// Attach port for whichever merge applies.
    attach_port: Option<Port>,

    done: bool,
    phases: u64,
    next_step: Option<(u64, u64, u64, Step)>,
}

impl DeterministicMst {
    /// Creates the node state for `ctx` with the paper's parameters.
    pub fn new(ctx: &NodeCtx) -> Self {
        Self::with_config(ctx, DeterministicConfig::default())
    }

    /// Creates the node state with ablation overrides.
    pub fn with_config(ctx: &NodeCtx, config: DeterministicConfig) -> Self {
        let id_bound = ctx.max_external_id;
        let coloring_blocks = match config.coloring {
            ColoringMode::FastAwake => 3 * id_bound,
            ColoringMode::ColeVishkin => 3 * (cv_iterations(id_bound) + 8),
        };
        DeterministicMst {
            timeline: Timeline::new(ctx.n, 9 + coloring_blocks + 6),
            core: FragmentCore::new(ctx),
            id_bound,
            config,
            agg_moe: None,
            frag_moe: None,
            moe_port: None,
            in_moe_ports: Vec::new(),
            child_counts: BTreeMap::new(),
            child_tokens: BTreeMap::new(),
            valid_in_ports: Vec::new(),
            out_valid: None,
            agg_nbrs: NbrSet::new(),
            nbr_info: NbrSet::new(),
            nbr_colors: BTreeMap::new(),
            stage_recv: None,
            stage_agg: None,
            cv_has_parent: false,
            cv_color: 0,
            cv_iter: 0,
            cv_recv: None,
            cv_agg: None,
            cv_flag_agg: None,
            nbr_cv_color_by_port: vec![None; ctx.degree()],
            nbr_cv_mask: 0,
            final_nbr_mask: 0,
            mask_recv: None,
            mask_agg: None,
            cv_bcast: None,
            mask_bcast: None,
            final_color: None,
            merging1: false,
            merging2: false,
            attach_port: None,
            done: false,
            phases: 0,
            next_step: None,
        }
    }

    /// `true` once the node has learned the MST is complete.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Number of completed merge phases.
    pub fn phases(&self) -> u64 {
        self.phases
    }

    /// Output: `true` at index `p` iff the edge behind port `p` is an MST
    /// edge.
    pub fn mst_ports(&self) -> &[bool] {
        &self.core.mst_ports
    }

    /// LDT snapshot for invariant checking.
    pub fn ldt_view(&self) -> LdtView {
        self.core.ldt_view()
    }

    // --- timeline geometry ---

    fn coloring_end(&self) -> u64 {
        COLORING_START
            + match self.config.coloring {
                ColoringMode::FastAwake => 3 * self.id_bound,
                ColoringMode::ColeVishkin => 3 * (cv_iterations(self.id_bound) + 8),
            }
    }
    fn merge_info1(&self) -> u64 {
        self.coloring_end()
    }
    fn merge_up1(&self) -> u64 {
        self.coloring_end() + 1
    }
    fn merge_down1(&self) -> u64 {
        self.coloring_end() + 2
    }
    fn merge_info2(&self) -> u64 {
        self.coloring_end() + 3
    }
    fn merge_up2(&self) -> u64 {
        self.coloring_end() + 4
    }
    fn merge_down2(&self) -> u64 {
        self.coloring_end() + 5
    }

    /// Decodes a coloring block index into (stage id in `[1, N]`, sub-block)
    /// — `Fast-Awake-Coloring` mode only.
    fn stage_of(&self, block: u64) -> Option<(u64, u64)> {
        (self.config.coloring == ColoringMode::FastAwake
            && (COLORING_START..self.coloring_end()).contains(&block))
        .then(|| {
            (
                1 + (block - COLORING_START) / 3,
                (block - COLORING_START) % 3,
            )
        })
    }

    /// Decodes a coloring block index into (triple, sub-block) — CV mode.
    ///
    /// Triples: `0` has-parent prep; `1..=T` CV iterations; `T+1` class
    /// exchange; `T+2+c` recolor stage of class `c ∈ 0..=5`.
    fn cv_triple_of(&self, block: u64) -> Option<(u64, u64)> {
        (self.config.coloring == ColoringMode::ColeVishkin
            && (COLORING_START..self.coloring_end()).contains(&block))
        .then(|| ((block - COLORING_START) / 3, (block - COLORING_START) % 3))
    }

    /// The color this fragment announces in CV iteration triple `k`
    /// (1-based), i.e. after `k - 1` updates.
    fn cv_color_for_triple(&self, k: u64) -> u64 {
        let applied = k - 1;
        if applied == 0 {
            self.core.frag
        } else if self.cv_has_parent {
            debug_assert_eq!(self.cv_iter, applied, "parent fragments track every update");
            self.cv_color
        } else {
            // Root rule applied once is already a fixpoint: c → c & 1.
            self.core.frag & 1
        }
    }

    /// The fragment's CV class after all `T` iterations (values `0..=5`).
    fn cv_class(&self) -> u64 {
        self.cv_color_for_triple(cv_iterations(self.id_bound) + 1)
    }

    /// Applies the CV update of iteration `triple` using the parent
    /// fragment's color, and stages the value for downward forwarding.
    fn apply_cv_update(&mut self, triple: u64, parent: u64) {
        let current = self.cv_color_for_triple(triple);
        self.cv_color = cv_step(current, parent);
        self.cv_iter = triple;
        self.cv_bcast = Some((triple, parent));
    }

    /// Fixes (or returns) this fragment's final color: the highest
    /// priority not used by already-recolored neighbors.
    fn fix_final_color(&mut self) -> Color {
        if let Some(f) = self.final_color {
            return f;
        }
        let f = Color::pick(&mask_colors(self.final_nbr_mask));
        self.final_color = Some(f);
        f
    }

    fn or_mask_recv(&mut self, triple: u64, bits: u8) {
        let cur = self
            .mask_recv
            .and_then(|(k, m)| (k == triple).then_some(m))
            .unwrap_or(0);
        self.mask_recv = Some((triple, cur | bits));
    }

    fn or_mask_agg(&mut self, triple: u64, bits: u8) {
        let cur = self
            .mask_agg
            .and_then(|(k, m)| (k == triple).then_some(m))
            .unwrap_or(0);
        self.mask_agg = Some((triple, cur | bits));
    }

    // --- fragment-level derived facts ---

    /// Ports that carry `G'` edges (valid MOEs), with the far fragment id.
    fn gprime_ports(&self) -> Vec<(Port, u64)> {
        let mut out = Vec::new();
        for &p in &self.valid_in_ports {
            if let Some((f, _)) = self.core.nbr[p.index()] {
                out.push((p, f));
            }
        }
        if self.out_valid == Some(true) {
            if let Some(p) = self.moe_port {
                if let Some((f, _)) = self.core.nbr[p.index()] {
                    out.push((p, f));
                }
            }
        }
        out
    }

    /// This fragment's color at merge time.
    ///
    /// `Fast-Awake-Coloring`: the greedy color — highest priority unused
    /// by smaller-id `G'` neighbors (well-defined from this fragment's
    /// stage onward). Cole–Vishkin: the final color fixed in the recolor
    /// stages (singletons are vacuously `Blue`).
    fn my_color(&self) -> Color {
        if self.config.coloring == ColoringMode::ColeVishkin {
            if self.nbr_info.is_empty() {
                return Color::Blue;
            }
            return self
                .final_color
                .expect("recolor stages fix the final color");
        }
        let used: Vec<Color> = self
            .nbr_info
            .fragments()
            .into_iter()
            .filter(|&f| f < self.core.frag)
            .map(|f| {
                *self
                    .nbr_colors
                    .get(&f)
                    .expect("smaller-id neighbors are colored before our stage")
            })
            .collect();
        Color::pick(&used)
    }

    /// Decides the merge roles after coloring (idempotent).
    fn decide_merging(&mut self) {
        let blue = self.my_color() == Color::Blue;
        self.merging1 = blue && !self.nbr_info.is_empty();
        self.merging2 = blue && self.nbr_info.is_empty();
        self.attach_port = None;
        if self.merging1 {
            let choice = *self
                .nbr_info
                .fragments()
                .first()
                .expect("merging1 implies neighbors");
            if self.nbr_info.contains(choice, Dir::Out) {
                // Our own valid outgoing MOE targets the chosen fragment.
                if self.out_valid == Some(true) {
                    if let Some(p) = self.moe_port {
                        if self.core.nbr[p.index()].map(|(f, _)| f) == Some(choice) {
                            self.attach_port = Some(p);
                        }
                    }
                }
            } else {
                // Attach over the chosen fragment's (unique) valid MOE into us.
                self.attach_port = self
                    .valid_in_ports
                    .iter()
                    .copied()
                    .find(|p| self.core.nbr[p.index()].map(|(f, _)| f) == Some(choice));
            }
        } else if self.merging2 {
            self.attach_port = self.moe_port;
        }
    }

    /// The `u_T`-local verdict on whether this fragment has a CV parent:
    /// the outgoing MOE must be valid, and if the same edge is also the
    /// target's (valid) MOE — a would-be 2-cycle — the smaller fragment id
    /// drops its parent pointer and roots the pseudo-tree.
    fn cv_parent_verdict(&self) -> Option<bool> {
        let p = self.moe_port?;
        if self.out_valid != Some(true) {
            return Some(false);
        }
        let shared_both_valid = self.valid_in_ports.contains(&p);
        let far = self.core.nbr[p.index()].map(|(f, _)| f).unwrap_or(0);
        Some(!(shared_both_valid && self.core.frag < far))
    }

    /// The node's wake schedule inside one block, sorted by offset.
    fn steps_for(&self, block: u64, degree: usize) -> Vec<(u64, Step)> {
        let o = ts_offsets(self.timeline.n(), self.core.level);
        let root = self.core.is_root();
        let kids = self.core.has_children();
        let mut steps = Vec::with_capacity(2);

        let upcast_shape = |steps: &mut Vec<(u64, Step)>| {
            if kids {
                steps.push((o.up_receive, Step::UpReceive));
            }
            if let Some(up) = o.up_send {
                steps.push((up, Step::UpSend));
            }
        };
        let bcast_shape = |steps: &mut Vec<(u64, Step)>| {
            if let Some(dr) = o.down_receive {
                steps.push((dr, Step::DownReceive));
            }
            if kids || root {
                steps.push((o.down_send, Step::DownSend));
            }
        };

        if let Some((stage, sub)) = self.stage_of(block) {
            let mine = self.core.frag == stage;
            let listening = self.nbr_info.contains_fragment(stage);
            match sub {
                0 => {
                    let has_edge_to_stage =
                        self.gprime_ports()
                            .iter()
                            .any(|&(_, f)| if mine { true } else { f == stage });
                    if (mine || listening) && has_edge_to_stage && degree > 0 {
                        steps.push((o.side, Step::Side));
                    }
                }
                1 if listening => upcast_shape(&mut steps),
                2 if listening => bcast_shape(&mut steps),
                _ => {}
            }
            // lint:allow(determinism) -- step offsets within a block are pairwise distinct by Timeline construction
            steps.sort_unstable_by_key(|&(off, _)| off);
            return steps;
        }

        if let Some((triple, sub)) = self.cv_triple_of(block) {
            // Singleton fragments (no G' neighbors) sleep through the
            // whole coloring segment and default to Blue.
            if self.nbr_info.is_empty() {
                return steps;
            }
            let t = cv_iterations(self.id_bound);
            let boundary = !self.gprime_ports().is_empty();
            match triple {
                // Has-parent prep: disseminate u_T's verdict.
                0 => match sub {
                    1 => upcast_shape(&mut steps),
                    2 => bcast_shape(&mut steps),
                    _ => {}
                },
                // CV iterations: boundary announce, parent-fragments
                // disseminate the received parent color.
                k if (1..=t).contains(&k) => match sub {
                    0 if boundary => steps.push((o.side, Step::Side)),
                    1 if self.cv_has_parent => upcast_shape(&mut steps),
                    2 if self.cv_has_parent => bcast_shape(&mut steps),
                    _ => {}
                },
                // CV-class exchange with all G' neighbors.
                k if k == t + 1 => match sub {
                    0 if boundary => steps.push((o.side, Step::Side)),
                    1 => upcast_shape(&mut steps),
                    2 => bcast_shape(&mut steps),
                    _ => {}
                },
                // Recolor stage for class c.
                k => {
                    let c = k - t - 2;
                    let announcing = self.cv_class() == c;
                    let listening = self.nbr_cv_mask & (1 << c) != 0;
                    match sub {
                        0 => {
                            let relevant = if announcing {
                                boundary
                            } else {
                                listening
                                    && self.gprime_ports().iter().any(|&(p, _)| {
                                        self.nbr_cv_color_by_port[p.index()] == Some(c)
                                    })
                            };
                            if relevant {
                                steps.push((o.side, Step::Side));
                            }
                        }
                        1 if listening => upcast_shape(&mut steps),
                        2 if announcing || listening => bcast_shape(&mut steps),
                        _ => {}
                    }
                }
            }
            // lint:allow(determinism) -- step offsets within a block are pairwise distinct by Timeline construction
            steps.sort_unstable_by_key(|&(off, _)| off);
            return steps;
        }

        match block {
            FRAG_ID_EXCHANGE | MOE_FLAG_EXCHANGE | VALID_NOTIFY if degree > 0 => {
                steps.push((o.side, Step::Side));
            }
            UPCAST_MOE | UP_COUNT | UP_NBRS => upcast_shape(&mut steps),
            BCAST_MOE | TOKEN_DOWN | BCAST_NBRS => bcast_shape(&mut steps),
            b if (b == self.merge_info1() || b == self.merge_info2()) && degree > 0 => {
                steps.push((o.side, Step::Side));
            }
            b if b == self.merge_up1() || b == self.merge_up2() => {
                let merging = if b == self.merge_up1() {
                    self.merging1
                } else {
                    self.merging2
                };
                if merging {
                    upcast_shape(&mut steps);
                }
            }
            b if b == self.merge_down1() || b == self.merge_down2() => {
                let merging = if b == self.merge_down1() {
                    self.merging1
                } else {
                    self.merging2
                };
                if merging {
                    if let Some(dr) = o.down_receive {
                        steps.push((dr, Step::DownReceive));
                    }
                    if kids {
                        steps.push((o.down_send, Step::DownSend));
                    }
                }
            }
            _ => {}
        }
        // lint:allow(determinism) -- step offsets within a block are pairwise distinct by Timeline construction
        steps.sort_unstable_by_key(|&(off, _)| off);
        steps
    }

    /// Next wake strictly after (`phase`, `block`, `after`), with phase
    /// and mid-phase apply points handled, and non-participating coloring
    /// stages skipped in `O(1)` per participating stage.
    fn advance(
        &mut self,
        mut phase: u64,
        mut block: u64,
        mut after: Option<u64>,
        degree: usize,
    ) -> NextWake {
        loop {
            // Fast-forward through non-participating coloring stages.
            if let Some((stage, _sub)) = self.stage_of(block) {
                if after.is_none()
                    && self.core.frag != stage
                    && !self.nbr_info.contains_fragment(stage)
                {
                    block = match self.next_participating_stage(stage + 1) {
                        Some(s) => COLORING_START + 3 * (s - 1),
                        None => self.coloring_end(),
                    };
                    if block == self.coloring_end() {
                        // Entering the merge segment: decide roles.
                        self.decide_merging();
                    }
                    continue;
                }
            }

            let next = self
                .steps_for(block, degree)
                .into_iter()
                .find(|&(off, _)| after.is_none_or(|a| off > a));
            if let Some((offset, step)) = next {
                self.next_step = Some((phase, block, offset, step));
                return NextWake::At(self.timeline.round(Position {
                    phase,
                    block,
                    offset,
                }));
            }
            after = None;
            block += 1;
            if block == self.coloring_end() {
                self.decide_merging();
            }
            if block == self.merge_info2() {
                // Blue-with-neighbor merges are now final; the refresh
                // exchange must advertise the post-merge (fragment, level).
                self.core.apply_merge();
            }
            if block == self.timeline.blocks_per_phase() {
                block = 0;
                phase += 1;
                self.end_phase();
            }
        }
    }

    /// The smallest stage id ≥ `from` in which this node participates.
    fn next_participating_stage(&self, from: u64) -> Option<u64> {
        let mut stages: Vec<u64> = self.nbr_info.fragments();
        stages.push(self.core.frag);
        stages
            .into_iter()
            .filter(|&s| s >= from && s <= self.id_bound)
            .min()
    }

    fn end_phase(&mut self) {
        self.core.apply_merge();
        self.core.clear_phase_scratch();
        self.agg_moe = None;
        self.frag_moe = None;
        self.moe_port = None;
        self.in_moe_ports.clear();
        self.child_counts.clear();
        self.child_tokens.clear();
        self.valid_in_ports.clear();
        self.out_valid = None;
        self.agg_nbrs = NbrSet::new();
        self.nbr_info = NbrSet::new();
        self.nbr_colors.clear();
        self.stage_recv = None;
        self.stage_agg = None;
        self.cv_has_parent = false;
        self.cv_color = 0;
        self.cv_iter = 0;
        self.cv_recv = None;
        self.cv_agg = None;
        self.cv_flag_agg = None;
        self.nbr_cv_color_by_port.iter_mut().for_each(|e| *e = None);
        self.nbr_cv_mask = 0;
        self.final_nbr_mask = 0;
        self.mask_recv = None;
        self.mask_agg = None;
        self.cv_bcast = None;
        self.mask_bcast = None;
        self.final_color = None;
        self.merging1 = false;
        self.merging2 = false;
        self.attach_port = None;
        self.phases += 1;
    }

    /// Splits `tokens` among this node's own incoming MOEs (first) and its
    /// children (in port order, capped by their reported counts), storing
    /// the results in `valid_in_ports` / `child_tokens`.
    fn allocate_tokens(&mut self, mut tokens: u64) {
        let own = (self.in_moe_ports.len() as u64).min(tokens);
        self.valid_in_ports = self.in_moe_ports[..own as usize].to_vec();
        tokens -= own;
        self.child_tokens.clear();
        let counts: Vec<(Port, u64)> = self.child_counts.iter().map(|(&p, &c)| (p, c)).collect();
        for (p, c) in counts {
            let grant = c.min(tokens);
            tokens -= grant;
            self.child_tokens.insert(p, grant);
        }
    }

    /// Own + children incoming-MOE edge count.
    fn subtree_count(&self) -> u64 {
        self.in_moe_ports.len() as u64 + self.child_counts.values().sum::<u64>()
    }

    /// This node's contribution to NBR-INFO.
    fn own_nbr_entries(&self) -> NbrSet {
        let mut set = NbrSet::new();
        for &p in &self.valid_in_ports {
            if let Some((f, _)) = self.core.nbr[p.index()] {
                set.insert(f, Dir::In);
            }
        }
        if self.out_valid == Some(true) {
            if let Some(p) = self.moe_port {
                if let Some((f, _)) = self.core.nbr[p.index()] {
                    set.insert(f, Dir::Out);
                }
            }
        }
        set
    }
}

impl Protocol for DeterministicMst {
    type Msg = MstMsg;

    fn init(&mut self, ctx: &NodeCtx) -> NextWake {
        self.advance(0, 0, None, ctx.degree())
    }

    fn send(&mut self, ctx: &NodeCtx, _round: Round, outbox: &mut Outbox<MstMsg>) {
        let (_, block, _, step) = self.next_step.expect("send only at planned wakes");

        if let Some((triple, sub)) = self.cv_triple_of(block) {
            let t = cv_iterations(self.id_bound);
            match (sub, step) {
                // --- prep triple: has-parent dissemination ---
                (1, Step::UpSend) if triple == 0 => {
                    let own = if self.moe_port.is_some() {
                        self.cv_parent_verdict()
                    } else {
                        None
                    };
                    outbox.push(
                        self.core.parent.expect("UpSend implies a parent"),
                        MstMsg::UpHasParent(own.or(self.cv_flag_agg)),
                    );
                }
                (2, Step::DownSend) if triple == 0 => {
                    if self.core.is_root() {
                        let own = if self.moe_port.is_some() {
                            self.cv_parent_verdict()
                        } else {
                            None
                        };
                        self.cv_has_parent = own.or(self.cv_flag_agg).unwrap_or(false);
                    }
                    for &p in &self.core.children {
                        outbox.push(p, MstMsg::DownHasParent(self.cv_has_parent));
                    }
                }

                // --- CV iteration triples ---
                (0, Step::Side) if (1..=t).contains(&triple) => {
                    let color = self.cv_color_for_triple(triple);
                    for (p, _) in self.gprime_ports() {
                        outbox.push(p, MstMsg::SideColorWord(color));
                    }
                }
                (1, Step::UpSend) if (1..=t).contains(&triple) => {
                    let own = self.cv_recv.and_then(|(k, c)| (k == triple).then_some(c));
                    let agg = own.or(self.cv_agg.and_then(|(k, c)| (k == triple).then_some(c)));
                    outbox.push(
                        self.core.parent.expect("UpSend implies a parent"),
                        MstMsg::UpColorWord(agg),
                    );
                }
                (2, Step::DownSend) if (1..=t).contains(&triple) => {
                    if self.core.is_root() {
                        let own = self.cv_recv.and_then(|(k, c)| (k == triple).then_some(c));
                        let parent = own
                            .or(self.cv_agg.and_then(|(k, c)| (k == triple).then_some(c)))
                            .expect("a parent fragment's color reaches the root");
                        self.apply_cv_update(triple, parent);
                    }
                    let (_, parent) = self.cv_bcast.expect("broadcast value fixed upstream");
                    for &p in &self.core.children {
                        outbox.push(p, MstMsg::DownColorWord(parent));
                    }
                }

                // --- class-exchange triple ---
                (0, Step::Side) if triple == t + 1 => {
                    let class = self.cv_class();
                    for (p, _) in self.gprime_ports() {
                        outbox.push(p, MstMsg::SideColorWord(class));
                    }
                }
                (1, Step::UpSend) if triple == t + 1 => {
                    let own = self.mask_recv.and_then(|(k, m)| (k == triple).then_some(m));
                    let agg = self.mask_agg.and_then(|(k, m)| (k == triple).then_some(m));
                    outbox.push(
                        self.core.parent.expect("UpSend implies a parent"),
                        MstMsg::UpMask(own.unwrap_or(0) | agg.unwrap_or(0)),
                    );
                }
                (2, Step::DownSend) if triple == t + 1 => {
                    if self.core.is_root() {
                        let own = self.mask_recv.and_then(|(k, m)| (k == triple).then_some(m));
                        let agg = self.mask_agg.and_then(|(k, m)| (k == triple).then_some(m));
                        self.nbr_cv_mask = own.unwrap_or(0) | agg.unwrap_or(0);
                    }
                    for &p in &self.core.children {
                        outbox.push(p, MstMsg::DownMask(self.nbr_cv_mask));
                    }
                }

                // --- recolor stages ---
                (0, Step::Side) => {
                    let c = triple - t - 2;
                    if self.cv_class() == c {
                        let f = self.fix_final_color();
                        for (p, _) in self.gprime_ports() {
                            outbox.push(p, MstMsg::SideColor(f));
                        }
                    }
                    // else: pure listener
                }
                (1, Step::UpSend) => {
                    let own = self.mask_recv.and_then(|(k, m)| (k == triple).then_some(m));
                    let agg = self.mask_agg.and_then(|(k, m)| (k == triple).then_some(m));
                    outbox.push(
                        self.core.parent.expect("UpSend implies a parent"),
                        MstMsg::UpMask(own.unwrap_or(0) | agg.unwrap_or(0)),
                    );
                }
                (2, Step::DownSend) => {
                    let c = triple - t - 2;
                    if self.cv_class() == c {
                        // Announcing fragment: broadcast the final color.
                        let f = if self.core.is_root() {
                            self.fix_final_color()
                        } else {
                            self.final_color.expect("received before forwarding")
                        };
                        for &p in &self.core.children {
                            outbox.push(p, MstMsg::DownColor(f));
                        }
                    } else {
                        // Listening fragment: broadcast the stage's mask.
                        if self.core.is_root() {
                            let own = self.mask_recv.and_then(|(k, m)| (k == triple).then_some(m));
                            let agg = self.mask_agg.and_then(|(k, m)| (k == triple).then_some(m));
                            let mask = own.unwrap_or(0) | agg.unwrap_or(0);
                            self.final_nbr_mask |= mask;
                            self.mask_bcast = Some((triple, mask));
                        }
                        let (_, mask) = self.mask_bcast.expect("mask fixed upstream");
                        for &p in &self.core.children {
                            outbox.push(p, MstMsg::DownMask(mask));
                        }
                    }
                }
                _ => {}
            }
            return;
        }

        if let Some((stage, sub)) = self.stage_of(block) {
            match (sub, step) {
                (0, Step::Side) if self.core.frag == stage => {
                    let color = self.my_color();
                    self.nbr_colors.insert(stage, color); // cache own color
                    for (p, _) in self.gprime_ports() {
                        outbox.push(p, MstMsg::SideColor(color));
                    }
                }
                (1, Step::UpSend) => {
                    let own = self.stage_recv.and_then(|(s, c)| (s == stage).then_some(c));
                    let agg = own.or(self.stage_agg.and_then(|(s, c)| (s == stage).then_some(c)));
                    outbox.push(
                        self.core.parent.expect("UpSend implies a parent"),
                        MstMsg::UpColor(agg),
                    );
                }
                (2, Step::DownSend) => {
                    if self.core.is_root() {
                        let own = self.stage_recv.and_then(|(s, c)| (s == stage).then_some(c));
                        let agg =
                            own.or(self.stage_agg.and_then(|(s, c)| (s == stage).then_some(c)));
                        let color = agg.expect("a G' edge to the staged fragment exists");
                        self.nbr_colors.insert(stage, color);
                    }
                    let color = *self
                        .nbr_colors
                        .get(&stage)
                        .expect("broadcast color fixed at the root");
                    for &p in &self.core.children {
                        outbox.push(p, MstMsg::DownColor(color));
                    }
                }
                _ => {}
            }
            return;
        }

        match (block, step) {
            (FRAG_ID_EXCHANGE, Step::Side) => {
                for p in ctx.ports() {
                    outbox.push(
                        p,
                        MstMsg::FragInfo {
                            frag: self.core.frag,
                            level: self.core.level,
                            attach: false,
                        },
                    );
                }
            }

            (UPCAST_MOE, Step::UpSend) => {
                let local = self.core.local_moe(ctx).map(|(w, _)| w);
                let agg = match (self.agg_moe, local) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                outbox.push(
                    self.core.parent.expect("UpSend implies a parent"),
                    MstMsg::UpMoe(agg),
                );
            }

            (BCAST_MOE, Step::DownSend) => {
                if self.core.is_root() {
                    let local = self.core.local_moe(ctx);
                    self.frag_moe = match (self.agg_moe, local.map(|(w, _)| w)) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                    match self.frag_moe {
                        None => self.done = true,
                        Some(w) => {
                            if local.map(|(lw, _)| lw) == Some(w) {
                                self.moe_port = local.map(|(_, p)| p);
                            }
                        }
                    }
                }
                for &p in &self.core.children {
                    outbox.push(p, MstMsg::DownMoe(self.frag_moe));
                }
            }

            (MOE_FLAG_EXCHANGE, Step::Side) => {
                for p in ctx.ports() {
                    outbox.push(
                        p,
                        MstMsg::SideMoeFlag {
                            over_moe: self.moe_port == Some(p),
                        },
                    );
                }
            }

            (UP_COUNT, Step::UpSend) => outbox.push(
                self.core.parent.expect("UpSend implies a parent"),
                MstMsg::UpCount(self.subtree_count()),
            ),

            (TOKEN_DOWN, Step::DownSend) => {
                if self.core.is_root() {
                    let tokens = self.config.token_cap.min(self.subtree_count());
                    self.allocate_tokens(tokens);
                }
                for &p in &self.core.children {
                    outbox.push(
                        p,
                        MstMsg::DownTokens(self.child_tokens.get(&p).copied().unwrap_or(0)),
                    );
                }
            }

            (VALID_NOTIFY, Step::Side) => {
                for &p in &self.in_moe_ports {
                    outbox.push(
                        p,
                        MstMsg::SideValid {
                            valid: self.valid_in_ports.contains(&p),
                        },
                    );
                }
            }

            (UP_NBRS, Step::UpSend) => {
                let mut set = self.own_nbr_entries();
                set.union(&self.agg_nbrs);
                outbox.push(
                    self.core.parent.expect("UpSend implies a parent"),
                    MstMsg::UpNbrs(set),
                );
            }

            (BCAST_NBRS, Step::DownSend) => {
                if self.core.is_root() {
                    let mut set = self.own_nbr_entries();
                    set.union(&self.agg_nbrs);
                    self.nbr_info = set;
                }
                for &p in &self.core.children {
                    outbox.push(p, MstMsg::DownNbrs(self.nbr_info.clone()));
                }
            }

            (b, Step::Side) if b == self.merge_info1() || b == self.merge_info2() => {
                let active = if b == self.merge_info1() {
                    self.merging1
                } else {
                    self.merging2
                };
                for p in ctx.ports() {
                    let attach = active && self.attach_port == Some(p);
                    outbox.push(
                        p,
                        MstMsg::FragInfo {
                            frag: self.core.frag,
                            level: self.core.level,
                            attach,
                        },
                    );
                }
            }

            (b, Step::UpSend) if b == self.merge_up1() || b == self.merge_up2() => {
                if let Some((level, frag)) = self.core.new_vals {
                    outbox.push(
                        self.core.parent.expect("UpSend implies a parent"),
                        MstMsg::MergeVals { level, frag },
                    );
                }
            }

            (b, Step::DownSend) if b == self.merge_down1() || b == self.merge_down2() => {
                if let Some((level, frag)) = self.core.new_vals {
                    for &p in &self.core.children {
                        outbox.push(p, MstMsg::MergeVals { level, frag });
                    }
                }
            }

            _ => {}
        }
    }

    fn deliver(&mut self, ctx: &NodeCtx, _round: Round, inbox: &[Envelope<MstMsg>]) -> NextWake {
        let (phase, block, offset, step) = self
            .next_step
            .take()
            .expect("deliver only at planned wakes");

        if let Some((triple, sub)) = self.cv_triple_of(block) {
            let t = cv_iterations(self.id_bound);
            match (sub, step) {
                // prep triple
                (1, Step::UpReceive) if triple == 0 => {
                    for env in inbox {
                        if let MstMsg::UpHasParent(v) = env.msg {
                            self.cv_flag_agg = self.cv_flag_agg.or(v);
                        }
                    }
                }
                (2, Step::DownReceive) if triple == 0 => {
                    for env in inbox {
                        if let MstMsg::DownHasParent(b) = env.msg {
                            self.cv_has_parent = b;
                        }
                    }
                }
                // CV iterations
                (0, Step::Side) if (1..=t).contains(&triple) => {
                    for env in inbox {
                        if let MstMsg::SideColorWord(w) = env.msg {
                            if self.cv_has_parent && self.moe_port == Some(env.port) {
                                self.cv_recv = Some((triple, w));
                            }
                        }
                    }
                }
                (1, Step::UpReceive) if (1..=t).contains(&triple) => {
                    for env in inbox {
                        if let MstMsg::UpColorWord(Some(w)) = env.msg {
                            self.cv_agg = Some((triple, w));
                        }
                    }
                }
                (2, Step::DownReceive) if (1..=t).contains(&triple) => {
                    for env in inbox {
                        if let MstMsg::DownColorWord(w) = env.msg {
                            self.apply_cv_update(triple, w);
                        }
                    }
                }
                // class exchange
                (0, Step::Side) if triple == t + 1 => {
                    for env in inbox {
                        if let MstMsg::SideColorWord(w) = env.msg {
                            debug_assert!(w < 6, "CV classes fit six values");
                            self.nbr_cv_color_by_port[env.port.index()] = Some(w);
                            self.or_mask_recv(triple, 1 << w);
                        }
                    }
                }
                (2, Step::DownReceive) if triple == t + 1 => {
                    for env in inbox {
                        if let MstMsg::DownMask(m) = env.msg {
                            self.nbr_cv_mask = m;
                        }
                    }
                }
                // recolor stages
                (0, Step::Side) => {
                    let c = triple - t - 2;
                    for env in inbox {
                        if let MstMsg::SideColor(col) = env.msg {
                            if self.nbr_cv_color_by_port[env.port.index()] == Some(c) {
                                self.or_mask_recv(triple, color_bit(col));
                            }
                        }
                    }
                }
                (1, Step::UpReceive) => {
                    for env in inbox {
                        if let MstMsg::UpMask(m) = env.msg {
                            self.or_mask_agg(triple, m);
                        }
                    }
                }
                (2, Step::DownReceive) => {
                    for env in inbox {
                        match env.msg {
                            MstMsg::DownColor(col) => self.final_color = Some(col),
                            MstMsg::DownMask(m) => {
                                self.final_nbr_mask |= m;
                                self.mask_bcast = Some((triple, m));
                            }
                            _ => {}
                        }
                    }
                }
                _ => {}
            }
            return self.advance(phase, block, Some(offset), ctx.degree());
        }

        if let Some((stage, sub)) = self.stage_of(block) {
            match (sub, step) {
                (0, Step::Side) => {
                    for env in inbox {
                        if let MstMsg::SideColor(c) = env.msg {
                            if self.core.nbr[env.port.index()].map(|(f, _)| f) == Some(stage) {
                                self.stage_recv = Some((stage, c));
                            }
                        }
                    }
                }
                (1, Step::UpReceive) => {
                    for env in inbox {
                        if let MstMsg::UpColor(Some(c)) = env.msg {
                            self.stage_agg = Some((stage, c));
                        }
                    }
                }
                (2, Step::DownReceive) => {
                    for env in inbox {
                        if let MstMsg::DownColor(c) = env.msg {
                            self.nbr_colors.insert(stage, c);
                        }
                    }
                }
                _ => {}
            }
            return self.advance(phase, block, Some(offset), ctx.degree());
        }

        match (block, step) {
            (FRAG_ID_EXCHANGE, Step::Side) => {
                for env in inbox {
                    if let MstMsg::FragInfo { frag, level, .. } = env.msg {
                        self.core.nbr[env.port.index()] = Some((frag, level));
                    }
                }
            }

            (UPCAST_MOE, Step::UpReceive) => {
                for env in inbox {
                    if let MstMsg::UpMoe(w) = env.msg {
                        self.agg_moe = match (self.agg_moe, w) {
                            (Some(a), Some(b)) => Some(a.min(b)),
                            (a, b) => a.or(b),
                        };
                    }
                }
            }

            (BCAST_MOE, Step::DownReceive) => {
                for env in inbox {
                    if let MstMsg::DownMoe(moe) = env.msg {
                        self.frag_moe = moe;
                        match moe {
                            None => self.done = true,
                            Some(w) => {
                                if let Some((lw, lp)) = self.core.local_moe(ctx) {
                                    if lw == w {
                                        self.moe_port = Some(lp);
                                    }
                                }
                            }
                        }
                    }
                }
                if self.done && !self.core.has_children() {
                    return NextWake::Halt;
                }
            }
            (BCAST_MOE, Step::DownSend) if self.done => {
                return NextWake::Halt;
            }

            (MOE_FLAG_EXCHANGE, Step::Side) => {
                for env in inbox {
                    if let MstMsg::SideMoeFlag { over_moe: true } = env.msg {
                        if self.core.nbr[env.port.index()].map(|(f, _)| f) != Some(self.core.frag) {
                            self.in_moe_ports.push(env.port);
                        }
                    }
                }
                self.in_moe_ports.sort_unstable();
            }

            (UP_COUNT, Step::UpReceive) => {
                for env in inbox {
                    if let MstMsg::UpCount(c) = env.msg {
                        self.child_counts.insert(env.port, c);
                    }
                }
            }

            (TOKEN_DOWN, Step::DownReceive) => {
                for env in inbox {
                    if let MstMsg::DownTokens(t) = env.msg {
                        self.allocate_tokens(t);
                    }
                }
            }

            (VALID_NOTIFY, Step::Side) => {
                for env in inbox {
                    if let MstMsg::SideValid { valid } = env.msg {
                        if self.moe_port == Some(env.port) {
                            self.out_valid = Some(valid);
                        }
                    }
                }
            }

            (UP_NBRS, Step::UpReceive) => {
                for env in inbox {
                    if let MstMsg::UpNbrs(ref s) = env.msg {
                        self.agg_nbrs.union(s);
                    }
                }
            }

            (BCAST_NBRS, Step::DownReceive) => {
                for env in inbox {
                    if let MstMsg::DownNbrs(ref s) = env.msg {
                        self.nbr_info = s.clone();
                    }
                }
            }

            (b, Step::Side) if b == self.merge_info1() || b == self.merge_info2() => {
                let active = if b == self.merge_info1() {
                    self.merging1
                } else {
                    self.merging2
                };
                for env in inbox {
                    if let MstMsg::FragInfo {
                        frag,
                        level,
                        attach,
                    } = env.msg
                    {
                        if b == self.merge_info2() {
                            // Refresh the neighbor table: merge-1 results.
                            self.core.nbr[env.port.index()] = Some((frag, level));
                        }
                        if active && self.attach_port == Some(env.port) {
                            self.core.new_vals = Some((level + 1, frag));
                            self.core.new_parent = Some(env.port);
                            self.core.mst_ports[env.port.index()] = true;
                        }
                        if attach {
                            self.core.mst_ports[env.port.index()] = true;
                            self.core.pending_children.push(env.port);
                        }
                    }
                }
            }

            (b, Step::UpReceive) if b == self.merge_up1() || b == self.merge_up2() => {
                for env in inbox {
                    if let MstMsg::MergeVals { level, frag } = env.msg {
                        if self.core.new_vals.is_none() {
                            self.core.new_vals = Some((level + 1, frag));
                            self.core.new_parent = Some(env.port);
                        }
                    }
                }
            }

            (b, Step::DownReceive) if b == self.merge_down1() || b == self.merge_down2() => {
                for env in inbox {
                    if let MstMsg::MergeVals { level, frag } = env.msg {
                        if self.core.new_vals.is_none() {
                            self.core.new_vals = Some((level + 1, frag));
                        }
                    }
                }
            }

            _ => {}
        }

        self.advance(phase, block, Some(offset), ctx.degree())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ldt::check_forest;
    use crate::runner::collect_mst_edges;
    use graphlib::{generators, mst};

    #[test]
    fn phase_labels_follow_the_block_layout() {
        let n = 4;
        let id_bound = 2u64;
        let mode = ColoringMode::FastAwake; // coloring window = 3·N = 6 blocks
        let t = Timeline::new(n, 9 + 3 * id_bound + 6);
        assert_eq!(phase_label(n, id_bound, mode, 0), "init");
        let head = [
            "fragment-id-exchange",
            "upcast-moe",
            "bcast-moe",
            "moe-flag-exchange",
            "up-count",
            "token-down",
            "valid-notify",
            "upcast-neighbors",
            "bcast-neighbors",
        ];
        for (b, want) in head.iter().enumerate() {
            assert_eq!(
                phase_label(n, id_bound, mode, t.block_start(0, b as u64)),
                *want
            );
            assert_eq!(
                phase_label(n, id_bound, mode, t.block_start(1, b as u64)),
                *want
            );
        }
        for b in 9..9 + 3 * id_bound {
            assert_eq!(
                phase_label(n, id_bound, mode, t.block_start(0, b)),
                "coloring"
            );
        }
        let tail_start = 9 + 3 * id_bound;
        let tail = [
            "merge-info",
            "merge-up",
            "merge-down",
            "merge-info",
            "merge-up",
            "merge-down",
        ];
        for (i, want) in tail.iter().enumerate() {
            assert_eq!(
                phase_label(n, id_bound, mode, t.block_start(0, tail_start + i as u64)),
                *want
            );
        }
        // Cole–Vishkin mode widens the coloring window but keeps the
        // same head/tail structure.
        let cv = ColoringMode::ColeVishkin;
        let cv_blocks = 3 * (cv_iterations(id_bound) + 8);
        let t_cv = Timeline::new(n, 9 + cv_blocks + 6);
        assert_eq!(
            phase_label(n, id_bound, cv, t_cv.block_start(0, 9 + cv_blocks - 1)),
            "coloring"
        );
        assert_eq!(
            phase_label(n, id_bound, cv, t_cv.block_start(0, 9 + cv_blocks)),
            "merge-info"
        );
    }
    use netsim::{SimConfig, Simulator};

    fn run(graph: &graphlib::WeightedGraph) -> netsim::RunOutcome<DeterministicMst> {
        Simulator::new(graph, SimConfig::default())
            .run(DeterministicMst::new)
            .expect("deterministic MST run fails")
    }

    fn edges(
        graph: &graphlib::WeightedGraph,
        states: &[DeterministicMst],
    ) -> Vec<graphlib::EdgeId> {
        collect_mst_edges(graph, states, |s| s.mst_ports()).unwrap()
    }

    #[test]
    fn single_node_halts_quickly() {
        let g = graphlib::GraphBuilder::new(1).build().unwrap();
        let out = run(&g);
        assert_eq!(out.stats.awake_max(), 1);
        assert!(out.states[0].is_done());
    }

    #[test]
    fn two_nodes_pick_their_edge() {
        let g = graphlib::GraphBuilder::new(2)
            .edge(0, 1, 5)
            .build()
            .unwrap();
        let out = run(&g);
        assert_eq!(edges(&g, &out.states).len(), 1);
    }

    #[test]
    fn matches_kruskal_on_small_graphs() {
        for seed in 0..6 {
            let g = generators::random_connected(18, 0.2, seed).unwrap();
            let out = run(&g);
            assert_eq!(
                edges(&g, &out.states),
                mst::kruskal(&g).edges,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_kruskal_on_structured_graphs() {
        let graphs = [
            generators::ring(13, 2).unwrap(),
            generators::path(11, 3).unwrap(),
            generators::grid(3, 5, 4).unwrap(),
            generators::complete(8, 5).unwrap(),
            generators::star(9, 6).unwrap(),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let out = run(g);
            assert_eq!(edges(g, &out.states), mst::kruskal(g).edges, "graph {i}");
        }
    }

    #[test]
    fn fully_deterministic() {
        let g = generators::random_connected(14, 0.25, 7).unwrap();
        let a = run(&g);
        let b = run(&g);
        assert_eq!(a.stats, b.stats);
        assert_eq!(edges(&g, &a.states), edges(&g, &b.states));
    }

    #[test]
    fn works_with_sparse_id_space() {
        // N >> n exercises the O(nN log n) round complexity dependence.
        let g = generators::with_id_space(generators::ring(8, 3).unwrap(), 64, 1).unwrap();
        let out = run(&g);
        assert_eq!(edges(&g, &out.states), mst::kruskal(&g).edges);
        // Rounds must scale with N (64 coloring stages per phase).
        let t = Timeline::new(8, 15 + 3 * 64);
        assert!(out.stats.rounds >= t.phase_len());
    }

    #[test]
    fn awake_complexity_stays_logarithmic() {
        let g = generators::random_connected(32, 0.15, 9).unwrap();
        let out = run(&g);
        let bound = 80.0 * (32f64).log2();
        assert!(
            (out.stats.awake_max() as f64) < bound,
            "awake {} exceeds {bound}",
            out.stats.awake_max()
        );
    }

    #[test]
    fn ldt_invariant_holds_at_phase_boundaries() {
        let g = generators::random_connected(12, 0.3, 5).unwrap();
        let t = Timeline::new(12, 15 + 3 * 12);
        let phase_len = t.phase_len();
        let mut last_phase = 0;
        let mut checked = 0;
        Simulator::new(&g, SimConfig::default())
            .run_with_observer(
                DeterministicMst::new,
                |round, states: &[DeterministicMst]| {
                    let phase = (round - 1) / phase_len;
                    if phase > last_phase {
                        last_phase = phase;
                        let views: Vec<LdtView> = states.iter().map(|s| s.ldt_view()).collect();
                        check_forest(&g, &views).expect("FLDT invariant violated");
                        checked += 1;
                    }
                },
            )
            .unwrap();
        assert!(checked >= 1);
    }

    #[test]
    fn messages_respect_congest_limit() {
        let g = generators::random_connected(24, 0.2, 11).unwrap();
        let limit = 8 * 5 + 64 + 4 * 16; // headroom for NbrSet payloads
        Simulator::new(&g, SimConfig::default().with_bit_limit(limit))
            .run(DeterministicMst::new)
            .expect("a message exceeded the CONGEST limit");
    }

    fn cv_config() -> DeterministicConfig {
        DeterministicConfig {
            coloring: ColoringMode::ColeVishkin,
            ..Default::default()
        }
    }

    fn run_cv(graph: &graphlib::WeightedGraph) -> netsim::RunOutcome<DeterministicMst> {
        Simulator::new(graph, SimConfig::default())
            .run(|ctx| DeterministicMst::with_config(ctx, cv_config()))
            .expect("CV-mode MST run fails")
    }

    #[test]
    fn cv_iteration_count_is_logstar_small() {
        assert_eq!(cv_iterations(1), 1);
        assert!(cv_iterations(255) <= 3);
        assert!(cv_iterations(1 << 20) <= 4);
        assert!(cv_iterations(u64::MAX) <= 5);
    }

    #[test]
    fn cv_step_reduces_and_separates() {
        // One step from b-bit colors lands in 2b values and keeps adjacent
        // colors distinct.
        for (a, b) in [(5u64, 9u64), (1, 2), (1023, 1022), (7, 8)] {
            let (na, nb) = (cv_step(a, b), cv_step(b, a));
            assert!(na <= 2 * 63 + 1);
            // Child/parent pairs stay distinct after one joint step when the
            // parent also updates against ITS parent — the classic argument;
            // here check the direct property: cv_step(a,b) identifies a bit
            // where a differs from b, so recomputing for b against a gives a
            // different (index, bit) pair.
            assert_ne!(na, nb, "({a},{b})");
        }
    }

    #[test]
    fn cole_vishkin_mode_matches_kruskal() {
        let graphs = [
            generators::ring(13, 2).unwrap(),
            generators::path(11, 3).unwrap(),
            generators::grid(3, 5, 4).unwrap(),
            generators::complete(8, 5).unwrap(),
            generators::random_connected(18, 0.2, 6).unwrap(),
            generators::random_connected(24, 0.1, 7).unwrap(),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let out = run_cv(g);
            assert_eq!(edges(g, &out.states), mst::kruskal(g).edges, "graph {i}");
            assert_eq!(out.stats.messages_lost, 0, "graph {i}");
        }
    }

    #[test]
    fn cole_vishkin_beats_fast_awake_rounds_on_sparse_ids() {
        // Corollary 1's point: run time O(n log n log* n) instead of
        // O(n N log n). With ids in [1, 2048] the stage-based coloring pays
        // 3·2048 blocks per phase; CV pays ~36.
        let g = generators::with_id_space(generators::ring(10, 3).unwrap(), 2048, 1).unwrap();
        let stages = run(&g);
        let cv = run_cv(&g);
        assert_eq!(edges(&g, &stages.states), edges(&g, &cv.states));
        assert!(
            cv.stats.rounds * 10 < stages.stats.rounds,
            "CV rounds {} not far below stage rounds {}",
            cv.stats.rounds,
            stages.stats.rounds
        );
    }

    #[test]
    fn cole_vishkin_awake_carries_logstar_overhead_only() {
        let g = generators::random_connected(32, 0.15, 9).unwrap();
        let out = run_cv(&g);
        let bound = 120.0 * (32f64).log2();
        assert!(
            (out.stats.awake_max() as f64) < bound,
            "awake {} exceeds {bound}",
            out.stats.awake_max()
        );
    }

    #[test]
    fn cole_vishkin_ldt_invariant_holds() {
        let g = generators::random_connected(12, 0.3, 5).unwrap();
        let blocks = 9 + 3 * (cv_iterations(12) + 8) + 6;
        let phase_len = Timeline::new(12, blocks).phase_len();
        let mut last_phase = 0;
        Simulator::new(&g, SimConfig::default())
            .run_with_observer(
                |ctx| DeterministicMst::with_config(ctx, cv_config()),
                |round, states: &[DeterministicMst]| {
                    let phase = (round - 1) / phase_len;
                    if phase > last_phase {
                        last_phase = phase;
                        let views: Vec<LdtView> = states.iter().map(|s| s.ldt_view()).collect();
                        check_forest(&g, &views).expect("FLDT invariant violated (CV mode)");
                    }
                },
            )
            .unwrap();
        assert!(last_phase >= 1);
    }

    #[test]
    fn token_cap_one_ablation_still_correct() {
        let g = generators::random_connected(16, 0.2, 13).unwrap();
        let out = Simulator::new(&g, SimConfig::default())
            .run(|ctx| {
                DeterministicMst::with_config(
                    ctx,
                    DeterministicConfig {
                        token_cap: 1,
                        ..Default::default()
                    },
                )
            })
            .unwrap();
        assert_eq!(edges(&g, &out.states), mst::kruskal(&g).edges);
    }

    #[test]
    fn disconnected_graph_builds_forest() {
        let g = graphlib::GraphBuilder::new(5)
            .edge(0, 1, 1)
            .edge(1, 2, 2)
            .edge(3, 4, 3)
            .build()
            .unwrap();
        let out = run(&g);
        assert_eq!(edges(&g, &out.states), mst::kruskal(&g).edges);
    }
}
