//! Wire-level request canonicalization for the service plane.
//!
//! A `sleeping-mst serve` daemon dedupes and caches work by the request's
//! *meaning*, not its spelling: two requests that are guaranteed to
//! produce identical bytes must map to the same cache key. This module is
//! the single place that guarantee is encoded. A [`RunRequest`] (the
//! untrusted, stringly request off the socket) canonicalizes into a
//! [`CanonicalRun`] whose [`CanonicalRun::cache_key`] folds away every
//! knob that is *proven* not to affect output bytes:
//!
//! * **executor** — all three time drivers are bit-identical (pinned by
//!   the cross-driver differential proptests and the CI artifact `cmp`s),
//!   so a `sync` request can be served from a result a `calendar` worker
//!   computed;
//! * **shards** — sharded send half-steps are byte-identical to serial
//!   execution for every shard count (`tests/shard_boundary.rs`, CI
//!   shards-1/2 `cmp`), so the shard knob is likewise erased;
//! * **inert fault plans** — a plan whose every intensity is zero takes
//!   the exact no-fault execution path
//!   ([`ExecOptions::active_faults`]), so it normalizes to "no plan" and
//!   shares the plain run's cache slot;
//! * **inert energy models** — a model whose every cost is zero cannot
//!   charge anything (budget or not), takes the exact no-energy path,
//!   and likewise normalizes to "no model".
//!
//! What stays in the key: algorithm name, graph spec string, seed (it
//! feeds both the graph weights and the protocol coins), any active
//! fault plan (every field, crashes included — fault decisions are a
//! pure function of the plan, so the plan *is* the behavior), and any
//! active energy model (charging fills the response's ledger, and a
//! budget can flip the outcome to `run.energy-exhausted`).
//!
//! The fingerprint is FNV-1a 64 over the canonical key string — the same
//! construction the report golden tests pin artifacts with.

use netsim::{EnergyModel, Executor, FaultPlan};

use crate::exec::ExecOptions;
use crate::registry::{self, AlgorithmSpec};

/// FNV-1a 64 over arbitrary bytes — the service plane's fingerprint
/// function (identical constants to the pinned report checksums).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An unvalidated run request as it arrives off the wire: algorithm and
/// graph are raw strings, every knob optional.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunRequest {
    /// Registry name of the algorithm to run.
    pub alg: String,
    /// Graph spec string (`ring:64`, `random:48:0.1`, …) — the grammar
    /// of [`graphlib::generators::from_spec`].
    pub graph: String,
    /// Seed for graph weights and protocol coins.
    pub seed: u64,
    /// Requested time driver. Does not change output bytes; erased from
    /// the cache key, honored at execution time.
    pub executor: Option<Executor>,
    /// Requested send-half-step shard count. Likewise bit-identical,
    /// likewise erased from the key.
    pub shards: Option<u32>,
    /// Fault plan; an inert plan canonicalizes to "no plan".
    pub faults: FaultPlan,
    /// Energy model to charge against; an inert model (all costs zero)
    /// canonicalizes to "no model" — it cannot change output bytes or
    /// the ledger, so it shares the plain run's cache slot.
    pub energy: Option<EnergyModel>,
}

/// A validated, canonical run request: the algorithm resolved against
/// the registry, the fault plan normalized, and the bit-identical knobs
/// separated from the cache-key fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalRun {
    /// The resolved registry entry.
    pub alg: &'static AlgorithmSpec,
    /// The graph spec, byte-for-byte as requested (the grammar is strict
    /// so distinct spellings are distinct graphs).
    pub graph: String,
    /// The request seed.
    pub seed: u64,
    /// The active fault plan, or `None` if the request's plan was inert.
    pub faults: Option<FaultPlan>,
    /// The active energy model, or `None` if the request's model was
    /// absent or inert. Stays in the cache key: charging fills the
    /// response's energy ledger, and a budget can change the outcome.
    pub energy: Option<EnergyModel>,
    /// Execution-only: requested driver (excluded from the key).
    pub executor: Option<Executor>,
    /// Execution-only: requested shard count (excluded from the key).
    pub shards: Option<u32>,
}

impl RunRequest {
    /// Validates and canonicalizes the request.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message if the algorithm name is not in
    /// the registry. (The graph spec is validated later, at execution
    /// time, where building it is unavoidable anyway — a bad spec is a
    /// deterministic, cacheable error.)
    pub fn canonicalize(&self) -> Result<CanonicalRun, String> {
        let alg = registry::find(&self.alg).ok_or_else(|| {
            format!(
                "unknown algorithm '{}' (expected {})",
                self.alg,
                registry::names()
            )
        })?;
        Ok(CanonicalRun {
            alg,
            graph: self.graph.clone(),
            seed: self.seed,
            faults: Some(self.faults.clone()).filter(|p| !p.is_inert()),
            energy: self.energy.filter(|m| !m.is_inert()),
            executor: self.executor,
            shards: self.shards,
        })
    }
}

impl CanonicalRun {
    /// The canonical cache-key string. Everything that can change output
    /// bytes is in here; everything proven bit-identical (executor,
    /// shards) is not. Inert fault plans render as the empty fault
    /// field, sharing the plain run's slot.
    pub fn cache_key(&self) -> String {
        let mut key = format!(
            "run|alg={}|graph={}|seed={}",
            self.alg.name, self.graph, self.seed
        );
        if let Some(plan) = &self.faults {
            // `crashes` is kept sorted by FaultPlan::with_crash, so the
            // rendering is canonical without re-sorting.
            let crashes: Vec<String> = plan
                .crashes
                .iter()
                .map(|(node, round)| format!("{node}@{round}"))
                .collect();
            key.push_str(&format!(
                "|faults=fs:{},drop:{},dup:{},sleep:{},jitter:{},crashes:{}",
                plan.fault_seed,
                plan.drop_ppm,
                plan.duplicate_ppm,
                plan.spurious_sleep_ppm,
                plan.wake_jitter,
                crashes.join(";"),
            ));
        }
        if let Some(model) = &self.energy {
            // spec_string() is canonical (fixed field order, budget only
            // when present), so it can feed the key directly.
            key.push_str(&format!("|energy={}", model.spec_string()));
        }
        key
    }

    /// FNV-1a 64 fingerprint of [`CanonicalRun::cache_key`] — the LRU
    /// and in-flight coalescing key of the serve daemon.
    pub fn fingerprint(&self) -> u64 {
        fnv64(self.cache_key().as_bytes())
    }

    /// The [`ExecOptions`] this request executes under. The
    /// execution-only knobs (executor, shards) are honored here even
    /// though the cache key erased them.
    pub fn exec_options(&self) -> ExecOptions {
        let mut opts = ExecOptions::seeded(self.seed);
        if let Some(plan) = &self.faults {
            opts = opts.with_faults(plan.clone());
        }
        if let Some(executor) = self.executor {
            opts = opts.with_executor(executor);
        }
        if let Some(shards) = self.shards {
            opts = opts.with_shards(shards);
        }
        if let Some(model) = self.energy {
            opts = opts.with_energy(model);
        }
        opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(alg: &str, graph: &str, seed: u64) -> RunRequest {
        RunRequest {
            alg: alg.into(),
            graph: graph.into(),
            seed,
            ..RunRequest::default()
        }
    }

    #[test]
    fn fnv64_matches_the_pinned_construction() {
        // Offset basis for the empty input; a known-answer probe for one byte.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn unknown_algorithms_are_rejected() {
        let err = request("bogus", "ring:8", 0).canonicalize().unwrap_err();
        assert!(err.contains("unknown algorithm"), "{err}");
        assert!(err.contains("randomized"), "lists valid names: {err}");
    }

    #[test]
    fn executor_and_shards_are_erased_from_the_key_but_kept_for_execution() {
        let mut req = request("randomized", "ring:16", 7);
        let plain = req.canonicalize().unwrap();
        req.executor = Some(Executor::Sync);
        req.shards = Some(4);
        let tuned = req.canonicalize().unwrap();
        assert_eq!(plain.cache_key(), tuned.cache_key());
        assert_eq!(plain.fingerprint(), tuned.fingerprint());
        assert_eq!(tuned.exec_options().executor, Some(Executor::Sync));
        assert_eq!(tuned.exec_options().shards, Some(4));
        assert_eq!(plain.exec_options().executor, None);
    }

    #[test]
    fn inert_fault_plans_share_the_plain_slot_and_active_ones_do_not() {
        let mut req = request("randomized", "ring:16", 7);
        let plain = req.canonicalize().unwrap();
        req.faults = FaultPlan::seeded(99); // inert: only a stream seed
        let inert = req.canonicalize().unwrap();
        assert_eq!(plain.cache_key(), inert.cache_key());
        assert!(inert.faults.is_none());
        assert_eq!(inert.exec_options(), ExecOptions::seeded(7));

        req.faults = FaultPlan::seeded(99).with_drop_ppm(1);
        let active = req.canonicalize().unwrap();
        assert_ne!(plain.cache_key(), active.cache_key());
        assert!(
            active.cache_key().contains("fs:99"),
            "{}",
            active.cache_key()
        );
        assert!(active.exec_options().active_faults().is_some());
    }

    #[test]
    fn inert_energy_models_share_the_plain_slot_and_active_ones_do_not() {
        let mut req = request("randomized", "ring:16", 7);
        let plain = req.canonicalize().unwrap();
        // All-zero costs: inert even with a budget attached.
        req.energy = Some(EnergyModel::default().with_budget(123));
        let inert = req.canonicalize().unwrap();
        assert_eq!(plain.cache_key(), inert.cache_key());
        assert!(inert.energy.is_none());
        assert_eq!(inert.exec_options(), ExecOptions::seeded(7));

        req.energy = Some(EnergyModel::reference());
        let active = req.canonicalize().unwrap();
        assert_ne!(plain.cache_key(), active.cache_key());
        assert!(
            active
                .cache_key()
                .contains("|energy=round:1000,tx:8,rx:4,idle:50"),
            "{}",
            active.cache_key()
        );
        assert!(active.exec_options().active_energy().is_some());
        // A budget extends the same segment and moves the fingerprint.
        req.energy = Some(EnergyModel::reference().with_budget(5_000_000));
        let budgeted = req.canonicalize().unwrap();
        assert_ne!(active.fingerprint(), budgeted.fingerprint());
        assert!(
            budgeted.cache_key().ends_with("budget:5000000"),
            "{}",
            budgeted.cache_key()
        );
    }

    #[test]
    fn every_key_field_moves_the_fingerprint() {
        let base = request("randomized", "ring:16", 7).canonicalize().unwrap();
        for other in [
            request("deterministic", "ring:16", 7),
            request("randomized", "ring:17", 7),
            request("randomized", "ring:16", 8),
        ] {
            assert_ne!(
                base.fingerprint(),
                other.canonicalize().unwrap().fingerprint(),
                "{other:?}"
            );
        }
        let mut crash = request("randomized", "ring:16", 7);
        crash.faults = FaultPlan::seeded(0).with_crash(3, 20);
        let crash = crash.canonicalize().unwrap();
        assert_ne!(base.fingerprint(), crash.fingerprint());
        assert!(crash.cache_key().contains("crashes:3@20"));
    }

    #[test]
    fn cache_key_is_stable() {
        // The key string is a wire-visible contract (it feeds committed
        // fingerprints); pin one example literally.
        let mut req = request("logstar", "grid:3x4", 5);
        req.faults = FaultPlan::seeded(2).with_drop_ppm(10).with_crash(1, 9);
        assert_eq!(
            req.canonicalize().unwrap().cache_key(),
            "run|alg=logstar|graph=grid:3x4|seed=5\
             |faults=fs:2,drop:10,dup:0,sleep:0,jitter:0,crashes:1@9"
        );
    }
}
