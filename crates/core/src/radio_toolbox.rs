//! The LDT toolbox ported to the energy-complexity (radio) model —
//! Appendix A made executable.
//!
//! The paper observes that the sleeping model and the **Local variant** of
//! the energy model (no collisions) are essentially interchangeable:
//! upper bounds transfer both ways. These protocols demonstrate that
//! claim concretely:
//!
//! * under [`CollisionRule::Local`], the `Transmission-Schedule`-based
//!   broadcast and upcast run with the *same* `O(1)` energy and `O(n)`
//!   time as their sleeping-model counterparts;
//! * under the *real* radio rules ([`CollisionRule::Detection`] /
//!   [`CollisionRule::Silence`]) the very same schedules break: two
//!   children answering their parent in the same round collide, and two
//!   same-depth transmitters sharing a listener collide. The tests
//!   construct both failure modes — this is the gap the paper's
//!   "possibly polylog(n) multiplicative factor" remark accounts for
//!   (collision-free slotting costs extra time or energy).

use netsim::radio::{Heard, RadioAction, RadioProtocol};
use netsim::{NextWake, NodeCtx, Round};

use crate::schedule::ts_offsets;
use crate::toolbox::TreeSpec;

#[cfg(doc)]
use netsim::radio::CollisionRule;

/// Tree broadcast over the radio channel: the root's value cascades down
/// the LDT on the usual schedule (`Down-Send` transmit, `Down-Receive`
/// listen).
///
/// Energy 1–2 per node. Correct under [`CollisionRule::Local`] on any
/// tree; under collision rules it requires that no listener has two
/// same-depth transmitting neighbors (true on paths, false in general —
/// see the tests).
#[derive(Debug, Clone)]
pub struct RadioBroadcast {
    spec: TreeSpec,
    /// The value held (pre-set at the root, received below).
    pub value: Option<u64>,
    /// Whether this node observed a collision instead of its parent's
    /// message.
    pub collided: bool,
    phase: u8,
}

impl RadioBroadcast {
    /// Creates the per-node state; pass `Some(value)` at the root.
    pub fn new(spec: TreeSpec, value: Option<u64>) -> Self {
        RadioBroadcast {
            spec,
            value,
            collided: false,
            phase: 0,
        }
    }
}

impl RadioProtocol for RadioBroadcast {
    type Msg = u64;

    fn init(&mut self, ctx: &NodeCtx) -> NextWake {
        let o = ts_offsets(ctx.n, self.spec.level);
        match o.down_receive {
            Some(dr) => NextWake::At(dr + 1),
            None if !self.spec.children.is_empty() => NextWake::At(o.down_send + 1),
            None => NextWake::Halt,
        }
    }

    fn act(&mut self, _ctx: &NodeCtx, _round: Round) -> RadioAction<u64> {
        let sending = self.phase == 1 || (self.phase == 0 && self.spec.parent.is_none());
        if sending {
            match self.value {
                Some(v) => RadioAction::Transmit(v),
                None => RadioAction::Idle, // nothing reached us (collision upstream)
            }
        } else {
            RadioAction::Listen
        }
    }

    fn heard(&mut self, ctx: &NodeCtx, _round: Round, outcome: Heard<u64>) -> NextWake {
        let o = ts_offsets(ctx.n, self.spec.level);
        if self.phase == 0 && self.spec.parent.is_some() {
            match outcome {
                Heard::All(values) => self.value = values.first().copied(),
                Heard::One(v) => self.value = Some(v),
                Heard::Collision => self.collided = true,
                _ => {}
            }
            self.phase = 1;
            if self.spec.children.is_empty() {
                return NextWake::Halt;
            }
            return NextWake::At(o.down_send + 1);
        }
        NextWake::Halt
    }
}

/// Tree min-upcast over the radio channel on the usual schedule: children
/// transmit at `Up-Send`, parents listen at `Up-Receive`.
///
/// Correct under [`CollisionRule::Local`] (the channel delivers every
/// child's value). Under collision rules, any node with two or more
/// children collides by construction — the tests verify exactly that,
/// which is why a faithful energy-model port needs per-child slotting
/// (time × Δ or an id-indexed window, time × N).
#[derive(Debug, Clone)]
pub struct RadioUpcastMin {
    spec: TreeSpec,
    /// Own value going in; at the root, the subtree minimum coming out
    /// (if no collision corrupted it).
    pub value: u64,
    /// Did this node's `Up-Receive` round collide?
    pub collided: bool,
    phase: u8,
}

impl RadioUpcastMin {
    /// Creates the per-node state with this node's input value.
    pub fn new(spec: TreeSpec, value: u64) -> Self {
        RadioUpcastMin {
            spec,
            value,
            collided: false,
            phase: 0,
        }
    }
}

impl RadioProtocol for RadioUpcastMin {
    type Msg = u64;

    fn init(&mut self, ctx: &NodeCtx) -> NextWake {
        let o = ts_offsets(ctx.n, self.spec.level);
        if !self.spec.children.is_empty() {
            NextWake::At(o.up_receive + 1)
        } else if let Some(up) = o.up_send {
            NextWake::At(up + 1)
        } else {
            NextWake::Halt
        }
    }

    fn act(&mut self, _ctx: &NodeCtx, _round: Round) -> RadioAction<u64> {
        let at_up_send = self.phase == 1 || (self.phase == 0 && self.spec.children.is_empty());
        if at_up_send && self.spec.parent.is_some() {
            RadioAction::Transmit(self.value)
        } else if !at_up_send {
            RadioAction::Listen
        } else {
            RadioAction::Idle
        }
    }

    fn heard(&mut self, ctx: &NodeCtx, _round: Round, outcome: Heard<u64>) -> NextWake {
        let o = ts_offsets(ctx.n, self.spec.level);
        if self.phase == 0 && !self.spec.children.is_empty() {
            match outcome {
                Heard::All(values) => {
                    for v in values {
                        self.value = self.value.min(v);
                    }
                }
                Heard::One(v) => self.value = self.value.min(v),
                Heard::Collision => self.collided = true,
                _ => {}
            }
            self.phase = 1;
            if let (Some(up), Some(_)) = (o.up_send, self.spec.parent) {
                return NextWake::At(up + 1);
            }
            return NextWake::Halt;
        }
        NextWake::Halt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toolbox::TreeSpec;
    use graphlib::{generators, mst, GraphBuilder, NodeId};
    use netsim::radio::{CollisionRule, RadioSimulator};

    fn tree_specs(graph: &graphlib::WeightedGraph) -> Vec<TreeSpec> {
        let t = mst::kruskal(graph);
        TreeSpec::from_tree_edges(graph, &t.edges, NodeId::new(0))
    }

    #[test]
    fn local_variant_broadcast_matches_sleeping_cost() {
        // Appendix A: the Local energy model behaves like the sleeping
        // model — same schedule, same O(1) energy, everyone informed.
        let g = generators::random_connected(24, 0.15, 5).unwrap();
        let specs = tree_specs(&g);
        let out = RadioSimulator::new(&g, CollisionRule::Local)
            .run(|ctx| {
                let payload = (ctx.node.raw() == 0).then_some(777);
                RadioBroadcast::new(specs[ctx.node.index()].clone(), payload)
            })
            .unwrap();
        assert!(out.states.iter().all(|s| s.value == Some(777)));
        assert!(out.stats.energy_max() <= 2);
        assert!(out.stats.rounds <= 2 * 24 + 1);
    }

    #[test]
    fn broadcast_survives_detection_on_a_path() {
        // On a path every listener has exactly one transmitting neighbor.
        let g = generators::path(12, 3).unwrap();
        let specs = tree_specs(&g);
        let out = RadioSimulator::new(&g, CollisionRule::Detection)
            .run(|ctx| {
                let payload = (ctx.node.raw() == 0).then_some(5);
                RadioBroadcast::new(specs[ctx.node.index()].clone(), payload)
            })
            .unwrap();
        assert!(out.states.iter().all(|s| s.value == Some(5)));
        assert_eq!(out.stats.collisions, 0);
    }

    /// The diamond-with-cross-edge graph: node 3 neighbors both depth-1
    /// transmitters, which broadcast simultaneously.
    fn collision_graph() -> (graphlib::WeightedGraph, Vec<TreeSpec>) {
        // Tree: 0 → {1, 2}; 1 → 3; 2 → 4. Extra (non-tree) edge 2–3.
        let g = GraphBuilder::new(5)
            .edge(0, 1, 1)
            .edge(0, 2, 2)
            .edge(1, 3, 3)
            .edge(2, 4, 4)
            .edge(2, 3, 5)
            .build()
            .unwrap();
        let tree: Vec<graphlib::EdgeId> = (0..4).map(graphlib::EdgeId::new).collect();
        let specs = TreeSpec::from_tree_edges(&g, &tree, NodeId::new(0));
        (g, specs)
    }

    #[test]
    fn broadcast_collides_without_the_local_rule() {
        let (g, specs) = collision_graph();
        // Node 3 listens while nodes 1 AND 2 (both its neighbors) transmit.
        let run = |rule| {
            RadioSimulator::new(&g, rule)
                .run(|ctx: &NodeCtx| {
                    let payload = (ctx.node.raw() == 0).then_some(9);
                    RadioBroadcast::new(specs[ctx.node.index()].clone(), payload)
                })
                .unwrap()
        };
        let local = run(CollisionRule::Local);
        assert!(
            local.states.iter().all(|s| s.value == Some(9)),
            "Local must succeed"
        );

        let detect = run(CollisionRule::Detection);
        assert!(detect.states[3].collided, "node 3 must hear a collision");
        assert_eq!(detect.states[3].value, None);
        assert!(detect.stats.collisions >= 1);

        let silent = run(CollisionRule::Silence);
        assert_eq!(silent.states[3].value, None, "collision hidden as silence");
        assert!(!silent.states[3].collided, "silence rule gives no marker");
    }

    #[test]
    fn local_variant_upcast_finds_the_minimum() {
        let g = generators::random_connected(20, 0.2, 7).unwrap();
        let specs = tree_specs(&g);
        let values: Vec<u64> = (0..20).map(|i| 500 + (i * 37) % 113).collect();
        let expected = *values.iter().min().unwrap();
        let out = RadioSimulator::new(&g, CollisionRule::Local)
            .run(|ctx| {
                RadioUpcastMin::new(specs[ctx.node.index()].clone(), values[ctx.node.index()])
            })
            .unwrap();
        assert_eq!(out.states[0].value, expected);
        assert!(out.stats.energy_max() <= 2);
    }

    #[test]
    fn upcast_with_two_children_collides_under_radio_rules() {
        // Star rooted at the hub: all leaves answer at the same Up-Send.
        let g = generators::star(5, 2).unwrap();
        let specs = tree_specs(&g);
        // Hub holds a large value so the collided and successful runs are
        // distinguishable at the root.
        let value_of = |ctx: &NodeCtx| {
            if ctx.node.raw() == 0 {
                999
            } else {
                100 + u64::from(ctx.node.raw())
            }
        };
        let out = RadioSimulator::new(&g, CollisionRule::Detection)
            .run(|ctx| RadioUpcastMin::new(specs[ctx.node.index()].clone(), value_of(ctx)))
            .unwrap();
        assert!(out.states[0].collided, "hub with 4 children must collide");
        assert_eq!(out.states[0].value, 999, "hub keeps only its own value");

        // The Local variant on the same instance is fine.
        let out = RadioSimulator::new(&g, CollisionRule::Local)
            .run(|ctx| RadioUpcastMin::new(specs[ctx.node.index()].clone(), value_of(ctx)))
            .unwrap();
        assert_eq!(out.states[0].value, 101);
    }
}
