//! The `Transmission-Schedule` of Appendix B.
//!
//! A *block* is a window of `2n + 1` consecutive rounds in which one tree
//! procedure (broadcast, upcast, side exchange, or merge sweep) runs. A
//! node at distance `i` from its fragment root wakes only at a handful of
//! named offsets inside the block; the offsets are arranged so that a
//! parent's `Down-Send` coincides with its children's `Down-Receive`, a
//! child's `Up-Send` with its parent's `Up-Receive`, and every node's
//! `Side-Send-Receive` falls in the same round network-wide.
//!
//! Offsets here are **0-based within the block** (the paper's rounds are
//! 1-based; subtract one).

/// Length in rounds of one transmission-schedule block for an `n`-node
/// network.
pub fn block_len(n: usize) -> u64 {
    2 * n as u64 + 1
}

/// The named wake offsets of one node inside a block.
///
/// `None` fields do not exist for that node (the root neither receives
/// from above nor sends upward).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TsOffsets {
    /// Root: absent. Non-root at distance `i`: offset `i - 1`, where the
    /// parent's [`TsOffsets::down_send`] lands.
    pub down_receive: Option<u64>,
    /// Offset `i` for a node at distance `i` (the root sends at offset 0).
    pub down_send: u64,
    /// Offset `n` for every node — the network-wide simultaneous exchange
    /// used by `Transmit-Adjacent`.
    pub side: u64,
    /// Offset `2n - i` for a node at distance `i`, where its children's
    /// [`TsOffsets::up_send`] lands.
    pub up_receive: u64,
    /// Root: absent. Non-root at distance `i`: offset `2n - i + 1`.
    pub up_send: Option<u64>,
}

/// Computes the schedule for a node at hop distance `distance` from its
/// fragment root, in an `n`-node network.
///
/// # Panics
///
/// Panics if `distance >= n` (levels in a labeled distance tree are always
/// at most `n - 1`).
pub fn ts_offsets(n: usize, distance: u64) -> TsOffsets {
    assert!(
        distance < n as u64 || (n == 0 && distance == 0),
        "distance {distance} out of range for n = {n}"
    );
    let n = n as u64;
    if distance == 0 {
        TsOffsets {
            down_receive: None,
            down_send: 0,
            side: n,
            up_receive: 2 * n,
            up_send: None,
        }
    } else {
        TsOffsets {
            down_receive: Some(distance - 1),
            down_send: distance,
            side: n,
            up_receive: 2 * n - distance,
            up_send: Some(2 * n - distance + 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_len_is_2n_plus_1() {
        assert_eq!(block_len(1), 3);
        assert_eq!(block_len(8), 17);
    }

    #[test]
    fn parent_child_down_offsets_align() {
        let n = 10;
        for i in 1..n as u64 {
            let parent = ts_offsets(n, i - 1);
            let child = ts_offsets(n, i);
            assert_eq!(Some(parent.down_send), child.down_receive, "distance {i}");
        }
    }

    #[test]
    fn parent_child_up_offsets_align() {
        let n = 10;
        for i in 1..n as u64 {
            let parent = ts_offsets(n, i - 1);
            let child = ts_offsets(n, i);
            assert_eq!(Some(parent.up_receive), child.up_send, "distance {i}");
        }
    }

    #[test]
    fn side_offset_is_global() {
        let n = 10;
        for i in 0..n as u64 {
            assert_eq!(ts_offsets(n, i).side, 10);
        }
    }

    #[test]
    fn all_offsets_fit_in_block() {
        let n = 10;
        let len = block_len(n);
        for i in 0..n as u64 {
            let o = ts_offsets(n, i);
            let mut all = vec![o.down_send, o.side, o.up_receive];
            all.extend(o.down_receive);
            all.extend(o.up_send);
            assert!(all.iter().all(|&x| x < len), "distance {i}: {all:?}");
        }
    }

    #[test]
    fn per_node_offsets_are_distinct_except_boundary_cases() {
        // For every distance, the five offsets a node might use in the
        // *same* block are pairwise distinct (so one wake has one meaning).
        let n = 10;
        for i in 0..n as u64 {
            let o = ts_offsets(n, i);
            let mut all = vec![o.down_send, o.side, o.up_receive];
            all.extend(o.down_receive);
            all.extend(o.up_send);
            let uniq: std::collections::BTreeSet<u64> = all.iter().copied().collect();
            assert_eq!(uniq.len(), all.len(), "distance {i} collides: {all:?}");
        }
    }

    #[test]
    fn matches_paper_for_root_and_distance_one() {
        // Paper (1-based): root Down-Send=1, Side=n+1, Up-Receive=2n+1.
        let n = 7;
        let root = ts_offsets(n, 0);
        assert_eq!(root.down_send, 0);
        assert_eq!(root.side, 7);
        assert_eq!(root.up_receive, 14);
        // Distance 1 (1-based: i=1, i+1=2, n+1, 2n, 2n+1).
        let one = ts_offsets(n, 1);
        assert_eq!(one.down_receive, Some(0));
        assert_eq!(one.down_send, 1);
        assert_eq!(one.up_receive, 13);
        assert_eq!(one.up_send, Some(14));
    }

    #[test]
    fn single_node_schedule_is_root_only() {
        // A one-node fragment has only the root: no parent-facing slots,
        // and everything fits in the 3-round block.
        let o = ts_offsets(1, 0);
        assert_eq!(
            o,
            TsOffsets {
                down_receive: None,
                down_send: 0,
                side: 1,
                up_receive: 2,
                up_send: None,
            }
        );
        let len = block_len(1);
        assert!(o.down_send < len && o.side < len && o.up_receive < len);
    }

    #[test]
    fn zero_node_guard_admits_only_the_degenerate_root() {
        // n = 0 is the empty-schedule degenerate case: the guard admits
        // exactly distance 0 and every offset collapses to 0.
        let o = ts_offsets(0, 0);
        assert_eq!(o.down_receive, None);
        assert_eq!(o.down_send, 0);
        assert_eq!(o.side, 0);
        assert_eq!(o.up_receive, 0);
        assert_eq!(o.up_send, None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_node_nonzero_distance_rejected() {
        ts_offsets(0, 1);
    }

    #[test]
    fn max_distance_offsets_stay_in_block() {
        // distance = n - 1 is the deepest legal node; its up_send is the
        // latest offset any node uses and must still fit in the block.
        let n = 4;
        let o = ts_offsets(n, n as u64 - 1);
        assert_eq!(o.down_receive, Some(2));
        assert_eq!(o.down_send, 3);
        assert_eq!(o.up_receive, 5);
        assert_eq!(o.up_send, Some(6));
        assert!(o.up_send.unwrap() < block_len(n));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_distance_beyond_n() {
        ts_offsets(4, 4);
    }
}
