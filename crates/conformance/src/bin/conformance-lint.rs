//! `conformance-lint` — the workspace's sleeping-model source lint.
//!
//! Usage: `conformance-lint [ROOT]` (default: current directory). Walks
//! every `src/**/*.rs` under `ROOT`, applies the rules documented in the
//! `conformance` crate, and prints one `file:line: rule: message` per
//! finding. Exit codes: 0 clean, 1 findings, 2 I/O error.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    match conformance::lint_tree(Path::new(&root)) {
        Ok(findings) if findings.is_empty() => {
            println!("conformance-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            eprintln!("conformance-lint: {} finding(s)", findings.len());
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("conformance-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
