//! `conformance-lint` — the workspace's sleeping-model source lint.
//!
//! Usage: `conformance-lint [--json] [--pragmas] [ROOT]` (default root:
//! current directory). Walks every `src/**/*.rs` under `ROOT`, applies
//! the rules documented in the `conformance` crate, and prints one
//! `file:line: rule: message` per finding. Exit codes: 0 clean, 1
//! findings, 2 I/O or usage error.
//!
//! `--json` emits the byte-deterministic findings artifact CI diffs
//! against the committed `conformance-baseline.json` (still exit 1 when
//! findings exist). `--pragmas` instead prints the inventory of active
//! `lint:allow` waivers — `file:line: rule: reason`, sorted — and exits
//! 0 (waivers are not findings); with `--json`, the inventory is emitted
//! as a JSON artifact.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut pragmas = false;
    let mut root: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--pragmas" => pragmas = true,
            other if other.starts_with("--") => {
                eprintln!("conformance-lint: unknown flag {other}");
                eprintln!("usage: conformance-lint [--json] [--pragmas] [ROOT]");
                return ExitCode::from(2);
            }
            other => {
                if root.replace(other.to_string()).is_some() {
                    eprintln!("conformance-lint: more than one ROOT given");
                    return ExitCode::from(2);
                }
            }
        }
    }
    let root = root.unwrap_or_else(|| ".".to_string());
    let root = Path::new(&root);

    if pragmas {
        return match conformance::pragma_tree(root) {
            Ok(entries) => {
                if json {
                    print!("{}", conformance::render_pragmas_json(&entries));
                } else {
                    for entry in &entries {
                        println!("{entry}");
                    }
                    eprintln!("conformance-lint: {} active pragma(s)", entries.len());
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("conformance-lint: error: {e}");
                ExitCode::from(2)
            }
        };
    }

    match conformance::lint_tree(root) {
        Ok(findings) if findings.is_empty() => {
            if json {
                print!("{}", conformance::render_findings_json(&findings));
            } else {
                println!("conformance-lint: clean");
            }
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            if json {
                print!("{}", conformance::render_findings_json(&findings));
            } else {
                for finding in &findings {
                    println!("{finding}");
                }
            }
            eprintln!("conformance-lint: {} finding(s)", findings.len());
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("conformance-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
