//! A lightweight scope tracker over the token stream.
//!
//! Three pieces of context the rules need that single tokens cannot
//! carry:
//!
//! * **Test regions** — the body of any item annotated `#[test]` or
//!   `#[cfg(test)]` (attribute arguments are token-matched, so
//!   `#[cfg(all(test, feature = "x"))]` counts and
//!   `#[cfg(feature = "test")]` does not). Most rules exempt test code.
//! * **`Protocol` impl blocks** — the body of any
//!   `impl … Protocol for …` (the trait segment immediately before
//!   `for` must end in `Protocol`, so `RadioProtocol` counts and a
//!   `P: Protocol` bound on some other impl does not). Protocol `send`
//!   runs inside shard workers, so these blocks are lane-executed code
//!   wherever the file lives — the `shard-safety` and `determinism`
//!   families apply inside them.
//! * **`use` aliases** — `use std::sync::Mutex as Lock;` makes `Lock`
//!   the name to lint. Every `… as alias` pair in a `use` declaration
//!   (grouped imports included) is recorded so rules resolve aliases
//!   back to the imported name.

use std::collections::BTreeMap;

use crate::lexer::{Tok, TokKind};

/// Per-token scope context, parallel to the token stream.
#[derive(Debug, Default)]
pub struct ScopeMap {
    /// `in_test[i]` — token `i` lies inside a test item's braces.
    pub in_test: Vec<bool>,
    /// `in_protocol_impl[i]` — token `i` lies inside an
    /// `impl … Protocol for …` body.
    pub in_protocol_impl: Vec<bool>,
    /// `use … as` aliases: alias → imported (final) name.
    pub aliases: BTreeMap<String, String>,
}

fn is_code(kind: TokKind) -> bool {
    !matches!(kind, TokKind::LineComment | TokKind::BlockComment)
}

/// Walks the token stream once and derives the [`ScopeMap`].
pub fn analyze(toks: &[Tok<'_>]) -> ScopeMap {
    let mut map = ScopeMap {
        in_test: vec![false; toks.len()],
        in_protocol_impl: vec![false; toks.len()],
        aliases: BTreeMap::new(),
    };
    let mut depth = 0usize;
    // Open region stack entries: the depth their body brace opened at.
    let mut test_stack: Vec<usize> = Vec::new();
    let mut proto_stack: Vec<usize> = Vec::new();
    // A test attribute was seen; the next item body (or `;`) resolves it.
    let mut pending_test = false;
    // Inside an `impl` header (between `impl` and its body `{`): the
    // idents collected so far, to classify the trait at the brace.
    let mut impl_header: Option<Vec<String>> = None;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        // Flags reflect the regions open *before* this token takes its
        // structural effect, except `{`, which belongs to the header.
        map.in_test[i] = !test_stack.is_empty() || pending_test;
        map.in_protocol_impl[i] = !proto_stack.is_empty();
        if !is_code(t.kind) {
            i += 1;
            continue;
        }
        match (t.kind, t.text) {
            (TokKind::Punct, "#") if toks.get(i + 1).map(|t| t.text) == Some("[") => {
                // Attribute: scan to the matching `]`, token-matching
                // `test` as an argument ident.
                let mut j = i + 2;
                let mut level = 1usize;
                let mut first_ident: Option<&str> = None;
                let mut saw_test_ident = false;
                while j < toks.len() && level > 0 {
                    let a = &toks[j];
                    match (a.kind, a.text) {
                        (TokKind::Punct, "[") => level += 1,
                        (TokKind::Punct, "]") => level -= 1,
                        (TokKind::Ident, name) => {
                            if first_ident.is_none() {
                                first_ident = Some(name);
                            }
                            if name == "test" {
                                saw_test_ident = true;
                            }
                        }
                        _ => {}
                    }
                    map.in_test[j] = !test_stack.is_empty() || pending_test;
                    map.in_protocol_impl[j] = !proto_stack.is_empty();
                    j += 1;
                }
                let is_test_attr = match first_ident {
                    Some("test") => true,
                    Some("cfg") => saw_test_ident,
                    _ => false,
                };
                if is_test_attr {
                    pending_test = true;
                }
                i = j;
                continue;
            }
            (TokKind::Ident, "impl") if test_stack.is_empty() => {
                impl_header = Some(Vec::new());
            }
            (TokKind::Ident, "use") => {
                // Scan the declaration to its `;`, recording `X as Y`.
                let mut j = i + 1;
                let mut group = 0usize;
                let mut last_ident: Option<&str> = None;
                while j < toks.len() {
                    let a = &toks[j];
                    map.in_test[j] = !test_stack.is_empty() || pending_test;
                    map.in_protocol_impl[j] = !proto_stack.is_empty();
                    match (a.kind, a.text) {
                        (TokKind::Punct, "{") => group += 1,
                        (TokKind::Punct, "}") => group = group.saturating_sub(1),
                        (TokKind::Punct, ";") if group == 0 => {
                            j += 1;
                            break;
                        }
                        (TokKind::Ident, "as") => {
                            if let (Some(orig), Some(alias)) = (
                                last_ident,
                                toks.get(j + 1)
                                    .filter(|t| t.kind == TokKind::Ident)
                                    .map(|t| t.text),
                            ) {
                                map.aliases.insert(alias.to_string(), orig.to_string());
                            }
                        }
                        (TokKind::Ident, name) => last_ident = Some(name),
                        _ => {}
                    }
                    j += 1;
                }
                // A `#[cfg(test)] use …;` is a fully gated single item.
                pending_test = false;
                i = j;
                continue;
            }
            (TokKind::Ident, name) => {
                if let Some(header) = impl_header.as_mut() {
                    header.push(name.to_string());
                }
            }
            (TokKind::Punct, "{") => {
                if let Some(header) = impl_header.take() {
                    // Trait segment is the ident right before `for`.
                    let is_protocol = header
                        .iter()
                        .position(|w| w == "for")
                        .and_then(|f| f.checked_sub(1))
                        .map(|t| header[t].ends_with("Protocol"))
                        .unwrap_or(false);
                    if is_protocol {
                        proto_stack.push(depth);
                        // The impl body itself is protocol scope.
                        map.in_protocol_impl[i] = true;
                    }
                }
                if pending_test {
                    pending_test = false;
                    test_stack.push(depth);
                    map.in_test[i] = true;
                }
                depth += 1;
            }
            (TokKind::Punct, "}") => {
                depth = depth.saturating_sub(1);
                if test_stack.last() == Some(&depth) {
                    test_stack.pop();
                }
                if proto_stack.last() == Some(&depth) {
                    proto_stack.pop();
                }
            }
            (TokKind::Punct, ";") => {
                // `#[cfg(test)] mod tests;` / `use …;` — single item.
                pending_test = false;
            }
            _ => {}
        }
        i += 1;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn flags_for(src: &str, needle: &str) -> (bool, bool) {
        let toks = lex(src);
        let map = analyze(&toks);
        let idx = toks
            .iter()
            .position(|t| t.text == needle)
            .unwrap_or_else(|| panic!("token {needle:?} not found"));
        (map.in_test[idx], map.in_protocol_impl[idx])
    }

    #[test]
    fn cfg_test_region_opens_and_closes() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { inner(); }\n}\nfn prod() { outer(); }\n";
        assert_eq!(flags_for(src, "inner"), (true, false));
        assert_eq!(flags_for(src, "outer"), (false, false));
    }

    #[test]
    fn cfg_feature_test_string_is_not_a_test_region() {
        let src = "#[cfg(feature = \"test\")]\nfn f() { inner(); }\n";
        assert_eq!(flags_for(src, "inner"), (false, false));
    }

    #[test]
    fn cfg_all_with_test_ident_counts() {
        let src = "#[cfg(all(test, unix))]\nmod t { fn f() { inner(); } }\n";
        assert_eq!(flags_for(src, "inner"), (true, false));
    }

    #[test]
    fn single_gated_item_does_not_swallow_the_file() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() { outer(); }\n";
        assert_eq!(flags_for(src, "outer"), (false, false));
    }

    #[test]
    fn stacked_attributes_keep_pending() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn f() { inner(); }\n";
        assert_eq!(flags_for(src, "inner"), (true, false));
    }

    #[test]
    fn protocol_impl_block_is_marked() {
        let src = "impl Protocol for Flood {\n fn send() { inner(); }\n}\nfn free() { outer(); }\n";
        assert_eq!(flags_for(src, "inner"), (false, true));
        assert_eq!(flags_for(src, "outer"), (false, false));
    }

    #[test]
    fn radio_protocol_and_generic_impls_are_marked() {
        let src = "impl<P: Protocol> Protocol for AlwaysAwake<P> { fn g() { inner(); } }";
        assert_eq!(flags_for(src, "inner"), (false, true));
        let src2 = "impl RadioProtocol for RadioBroadcast { fn g() { inner2(); } }";
        assert_eq!(flags_for(src2, "inner2"), (false, true));
    }

    #[test]
    fn protocol_bound_on_other_impl_is_not_marked() {
        let src = "impl<P: Protocol> AlgorithmSpec for Wrapper<P> { fn g() { inner(); } }";
        assert_eq!(flags_for(src, "inner"), (false, false));
    }

    #[test]
    fn use_aliases_are_recorded_including_groups() {
        let toks = lex("use std::sync::Mutex as Lock;\nuse std::cell::{Cell as C, RefCell};\n");
        let map = analyze(&toks);
        assert_eq!(map.aliases.get("Lock").map(String::as_str), Some("Mutex"));
        assert_eq!(map.aliases.get("C").map(String::as_str), Some("Cell"));
        assert!(!map.aliases.contains_key("RefCell"));
    }

    #[test]
    fn test_impl_inside_test_module_stays_test() {
        let src = "#[cfg(test)]\nmod tests {\n impl Protocol for Fake { fn f() { inner(); } }\n}\n";
        let (in_test, _) = flags_for(src, "inner");
        assert!(in_test);
    }
}
