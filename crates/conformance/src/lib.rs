//! The static half of model conformance: a repo-specific source lint.
//!
//! The paper's guarantees (Section 1.1) and every number in
//! `EXPERIMENTS.md` rest on the simulation being a *deterministic*
//! implementation of the sleeping model. This crate enforces the source
//! hygiene that keeps it one — the dynamic half (the trace auditor) lives
//! in `netsim::validate`. No external dependencies: the scanner is a
//! line-based analyzer, deliberately dumb and fast, tuned to this
//! workspace's idioms rather than general Rust.
//!
//! # Rules
//!
//! | rule | scope | what it forbids |
//! |------|-------|-----------------|
//! | `hash-container` | netsim, core, bench, lowerbound, root (tests included) | `HashMap`/`HashSet`: iteration order is randomized per process, which has already produced a real nondeterminism bug (merge-depth BFS in `ablations.rs`) |
//! | `wall-clock` | every crate, non-test | `std::time`, `SystemTime`, `Instant::now`, `thread_rng`: ambient nondeterminism outside the vendored, seeded shims |
//! | `print-in-lib` | every crate, non-bin, non-test | `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!`: library code must return strings; only binaries print |
//! | `bare-unwrap` | netsim, core, non-test | `.unwrap()` with no message: hot-path panics must be typed errors or `.expect("reason")` documenting the invariant |
//! | `engine-panic-path` | `netsim/src/engine.rs`, `netsim/src/sim.rs`, non-test | any panic machinery (`unwrap`, `expect`, `panic!`, `unreachable!`, …): the executor hot path returns `SimError`, never panics |
//! | `fault-stream` | `netsim/src/faults.rs`, non-test | touching any RNG source other than the plan's own `fault_seed` (`master_seed`, `rng_seed`, `thread_rng`, `SmallRng`): fault decisions must be a pure function of `(fault_seed, tag, round, edge)` so both executors reach identical verdicts and `run --json` replays exactly |
//! | `bad-pragma` | everywhere | a `lint:allow` pragma naming an unknown rule or missing its ` -- reason` |
//!
//! `graphlib` is deliberately outside the `hash-container` scope: its hash
//! sets back membership-only rejection sampling (insert/contains, order
//! never observed), and its generators are seeded.
//!
//! # Allow pragma
//!
//! A finding is suppressed by a pragma on the same line or on a comment
//! line directly above, naming the rule and giving a reason:
//!
//! ```text
//! // lint:allow(wall-clock) -- throughput report needs real elapsed time
//! let started = std::time::Instant::now();
//! ```
//!
//! A pragma with an unknown rule name or without the ` -- reason` tail is
//! itself reported (`bad-pragma`), so the allowlist stays auditable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Names of every rule the scanner knows, in report order.
pub const RULE_NAMES: &[&str] = &[
    "hash-container",
    "wall-clock",
    "print-in-lib",
    "bare-unwrap",
    "engine-panic-path",
    "fault-stream",
    "bad-pragma",
];

/// Crates whose sources are checked for `hash-container` (directory names
/// under `crates/`, plus `sleeping-mst` for the root package).
const HASH_SCOPE: &[&str] = &["netsim", "core", "bench", "lowerbound", "sleeping-mst"];

/// Crates whose non-test sources are checked for `bare-unwrap`.
const UNWRAP_SCOPE: &[&str] = &["netsim", "core"];

/// One lint finding, reported as `file:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-indexed line number.
    pub line: usize,
    /// The violated rule (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// How a file is classified for rule scoping, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FileCtx<'a> {
    /// Directory name under `crates/`, or `sleeping-mst` for the root
    /// package's `src/`.
    crate_name: &'a str,
    /// Binary target (`src/bin/…` or `src/main.rs`): prints are its job.
    is_bin: bool,
    /// The executor hot path held to the zero-panic rule.
    is_engine_hot_path: bool,
    /// The fault-decision module: its randomness must derive only from
    /// the plan's own `fault_seed`, never the protocol RNG streams.
    is_fault_plane: bool,
}

fn classify(path: &str) -> FileCtx<'_> {
    let crate_name = match path.find("crates/") {
        Some(i) => {
            let rest = &path[i + "crates/".len()..];
            rest.split('/').next().unwrap_or("")
        }
        None if path.starts_with("src/") || path.contains("/src/") => "sleeping-mst",
        None => "",
    };
    FileCtx {
        crate_name,
        is_bin: path.contains("/bin/") || path.ends_with("main.rs"),
        is_engine_hot_path: path.ends_with("crates/netsim/src/engine.rs")
            || path.ends_with("crates/netsim/src/sim.rs")
            || path == "crates/netsim/src/engine.rs"
            || path == "crates/netsim/src/sim.rs",
        is_fault_plane: path.ends_with("crates/netsim/src/faults.rs")
            || path == "crates/netsim/src/faults.rs",
    }
}

/// Brace balance of `code`, ignoring braces inside string and char
/// literals (format strings like `"{x}"` would otherwise skew the
/// `#[cfg(test)]` region tracking).
fn brace_balance(code: &str) -> i64 {
    let mut balance = 0i64;
    let mut chars = code.chars().peekable();
    let mut in_string = false;
    let mut in_char = false;
    while let Some(c) = chars.next() {
        match c {
            '\\' if in_string || in_char => {
                chars.next();
            }
            '"' if !in_char => in_string = !in_string,
            '\'' if !in_string => {
                // A char literal ('x', '\n', '{') — consume up to the
                // closing quote; lifetimes ('a) have none and fall through.
                let mut look = chars.clone();
                match look.next() {
                    Some('\\') => {
                        look.next();
                        if look.next() == Some('\'') {
                            chars.next();
                            chars.next();
                            chars.next();
                        }
                    }
                    Some(_) if look.next() == Some('\'') => {
                        chars.next();
                        chars.next();
                    }
                    _ => in_char = false,
                }
            }
            '{' if !in_string && !in_char => balance += 1,
            '}' if !in_string && !in_char => balance -= 1,
            _ => {}
        }
    }
    balance
}

/// The code portion of a line: everything before a `//` comment that is
/// not inside a string literal.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_string = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_string => i += 1,
            b'"' => in_string = !in_string,
            b'/' if !in_string && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

/// A parsed `lint:allow` pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Pragma {
    rule: String,
    has_reason: bool,
}

/// Extracts a `lint:allow(<rule>) -- reason` pragma from a line, if any.
fn parse_pragma(line: &str) -> Option<Pragma> {
    let start = line.find("lint:allow(")?;
    let after = &line[start + "lint:allow(".len()..];
    let close = after.find(')')?;
    let rule = after[..close].trim().to_string();
    let tail = &after[close + 1..];
    let has_reason = tail
        .trim_start()
        .strip_prefix("--")
        .is_some_and(|r| !r.trim().is_empty());
    Some(Pragma { rule, has_reason })
}

/// Per-line state for `#[cfg(test)]` / `#[test]` region tracking.
#[derive(Debug, Default)]
struct TestRegion {
    /// `Some(depth)` while inside a test item's braces.
    depth: Option<i64>,
    /// A test attribute was seen; waiting for the item's opening brace.
    pending: bool,
}

impl TestRegion {
    /// Advances over one line of code and reports whether that line is
    /// part of a test region (the attribute and header lines count).
    fn step(&mut self, code: &str, trimmed: &str) -> bool {
        if let Some(depth) = self.depth.as_mut() {
            *depth += brace_balance(code);
            if *depth <= 0 {
                self.depth = None;
            }
            return true;
        }
        if self.pending {
            if code.contains('{') {
                self.pending = false;
                let balance = brace_balance(code);
                if balance > 0 {
                    self.depth = Some(balance);
                }
            } else if trimmed.starts_with("#[") || trimmed.is_empty() {
                // Stacked attributes / blank line: keep waiting.
            } else if code.trim_end().ends_with(';') {
                // `#[cfg(test)] use …;` — a single gated item, done.
                self.pending = false;
            }
            return true;
        }
        if trimmed.starts_with("#[cfg(test)") || trimmed == "#[test]" {
            self.pending = true;
            return true;
        }
        false
    }
}

/// Lints one source file. `path` is the workspace-relative path (used for
/// rule scoping and in findings); `source` its full contents.
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    let ctx = classify(path);
    if ctx.crate_name == "conformance" {
        // The linter's own sources and fixtures mention every needle.
        return Vec::new();
    }

    let lines: Vec<&str> = source.lines().collect();

    // Pass 1: pragmas. `allows[i]` = rules suppressed on line i (0-based),
    // from a same-line pragma or a pragma comment directly above.
    let mut allows: Vec<Vec<String>> = vec![Vec::new(); lines.len()];
    let mut findings = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let Some(pragma) = parse_pragma(line) else {
            continue;
        };
        if !RULE_NAMES.contains(&pragma.rule.as_str()) {
            findings.push(Finding {
                file: path.to_string(),
                line: i + 1,
                rule: "bad-pragma",
                message: format!(
                    "unknown rule '{}' (known: {})",
                    pragma.rule,
                    RULE_NAMES.join(", ")
                ),
            });
            continue;
        }
        if !pragma.has_reason {
            findings.push(Finding {
                file: path.to_string(),
                line: i + 1,
                rule: "bad-pragma",
                message: format!(
                    "pragma for '{}' lacks a reason; write `lint:allow({}) -- why`",
                    pragma.rule, pragma.rule
                ),
            });
            continue;
        }
        allows[i].push(pragma.rule.clone());
        if i + 1 < lines.len() && lines[i].trim_start().starts_with("//") {
            let rule = pragma.rule;
            allows[i + 1].push(rule);
        }
    }

    // Pass 2: rules.
    let mut region = TestRegion::default();
    for (i, line) in lines.iter().enumerate() {
        let trimmed = line.trim_start();
        let code = strip_comment(line);
        let in_test = region.step(code, trimmed);
        if trimmed.starts_with("//") || code.trim().is_empty() {
            continue;
        }
        let allowed = |rule: &str| allows[i].iter().any(|a| a == rule);
        let mut report = |rule: &'static str, message: String| {
            if !allowed(rule) {
                findings.push(Finding {
                    file: path.to_string(),
                    line: i + 1,
                    rule,
                    message,
                });
            }
        };

        // hash-container: tests included — trace-pinning and differential
        // tests are exactly where iteration order corrupts expectations.
        if HASH_SCOPE.contains(&ctx.crate_name)
            && (code.contains("HashMap") || code.contains("HashSet"))
        {
            report(
                "hash-container",
                "std hash containers iterate in randomized order; use BTreeMap/BTreeSet \
                 or sort the keys"
                    .to_string(),
            );
        }

        if in_test {
            continue;
        }

        if !ctx.crate_name.is_empty()
            && (code.contains("std::time")
                || code.contains("SystemTime")
                || code.contains("Instant::now(")
                || code.contains("thread_rng"))
        {
            report(
                "wall-clock",
                "ambient time/randomness breaks run reproducibility; derive everything \
                 from the seeded shims"
                    .to_string(),
            );
        }

        if !ctx.crate_name.is_empty()
            && !ctx.is_bin
            && (code.contains("println!")
                || code.contains("eprintln!")
                || code.contains("print!(")
                || code.contains("eprint!(")
                || code.contains("dbg!("))
        {
            report(
                "print-in-lib",
                "library code must not print; return a String and let the binary emit it"
                    .to_string(),
            );
        }

        if UNWRAP_SCOPE.contains(&ctx.crate_name) && code.contains(".unwrap()") {
            report(
                "bare-unwrap",
                "unreasoned panic in protocol/engine code; use a typed error or \
                 .expect(\"invariant\")"
                    .to_string(),
            );
        }

        if ctx.is_engine_hot_path
            && [
                ".unwrap()",
                ".expect(",
                "panic!(",
                "unreachable!(",
                "todo!(",
                "unimplemented!(",
            ]
            .iter()
            .any(|needle| code.contains(needle))
        {
            report(
                "engine-panic-path",
                "the executor hot path must return SimError, never panic".to_string(),
            );
        }

        if ctx.is_fault_plane
            && ["master_seed", "rng_seed", "thread_rng", "SmallRng"]
                .iter()
                .any(|needle| code.contains(needle))
        {
            report(
                "fault-stream",
                "fault decisions must derive only from the plan's fault_seed (a pure \
                 function of (fault_seed, tag, round, edge)); mixing in protocol RNG \
                 streams breaks replay and executor agreement"
                    .to_string(),
            );
        }
    }

    findings
}

/// Walks `root` and lints every `src/**/*.rs` file of the workspace (root
/// package and member crates), skipping `vendor/`, `target/`, `.git`, and
/// the conformance crate itself. Files are visited in sorted path order,
/// so output is deterministic.
///
/// # Errors
///
/// Propagates I/O failures (unreadable directories or files).
pub fn lint_tree(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, PathBuf::new(), &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for rel in &files {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let source = fs::read_to_string(root.join(rel))?;
        findings.extend(lint_source(&rel_str, &source));
    }
    Ok(findings)
}

fn collect_rs_files(root: &Path, rel: PathBuf, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let dir = root.join(&rel);
    let mut entries: Vec<_> = fs::read_dir(&dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let sub = rel.join(name.as_ref());
        if entry.file_type()?.is_dir() {
            if matches!(name.as_ref(), "vendor" | "target" | ".git" | "conformance") {
                continue;
            }
            collect_rs_files(root, sub, out)?;
        } else if name.ends_with(".rs") {
            let sub_str = sub.to_string_lossy().replace('\\', "/");
            if sub_str.starts_with("src/") || sub_str.contains("/src/") {
                out.push(sub);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/netsim/src/engine.rs").crate_name, "netsim");
        assert!(classify("crates/netsim/src/engine.rs").is_engine_hot_path);
        assert!(!classify("crates/netsim/src/radio.rs").is_engine_hot_path);
        assert_eq!(classify("src/cli.rs").crate_name, "sleeping-mst");
        assert!(classify("crates/bench/src/bin/table1.rs").is_bin);
        assert!(!classify("crates/bench/src/lib.rs").is_bin);
    }

    #[test]
    fn hash_container_fires_in_scope_and_in_tests() {
        let src = "fn f() {\n    let m = std::collections::HashMap::new();\n}\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/x.rs", src)),
            vec!["hash-container"]
        );
        // graphlib is out of scope (membership-only use, documented).
        assert!(lint_source("crates/graphlib/src/x.rs", src).is_empty());
        // Tests are NOT exempt for this rule.
        let test_src = "#[cfg(test)]\nmod tests {\n    fn f() { let s = HashSet::new(); }\n}\n";
        assert_eq!(
            rules_of(&lint_source("crates/netsim/src/x.rs", test_src)),
            vec!["hash-container"]
        );
    }

    #[test]
    fn wall_clock_fires_outside_tests_only() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/bench/src/bin/table1.rs", src)),
            vec!["wall-clock"]
        );
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn f() { let t = std::time::Instant::now(); }\n}\n";
        assert!(lint_source("crates/bench/src/bin/table1.rs", test_src).is_empty());
    }

    #[test]
    fn print_in_lib_exempts_binaries() {
        let src = "fn f() { println!(\"hi\"); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/bench/src/lib.rs", src)),
            vec!["print-in-lib"]
        );
        assert!(lint_source("crates/bench/src/bin/table1.rs", src).is_empty());
    }

    #[test]
    fn bare_unwrap_scope_and_expect_distinction() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/x.rs", src)),
            vec!["bare-unwrap"]
        );
        // .expect with a reason is fine outside the engine hot path…
        let expect_src = "fn f() { x.expect(\"reason\"); }\n";
        assert!(lint_source("crates/core/src/x.rs", expect_src).is_empty());
        // …but not inside it.
        assert_eq!(
            rules_of(&lint_source("crates/netsim/src/engine.rs", expect_src)),
            vec!["engine-panic-path"]
        );
        // bench is outside the bare-unwrap scope.
        assert!(lint_source("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn engine_hot_path_rejects_all_panic_machinery() {
        for needle in ["a.unwrap();", "panic!(\"x\");", "unreachable!();"] {
            let src = format!("fn f() {{ {needle} }}\n");
            let findings = lint_source("crates/netsim/src/sim.rs", &src);
            assert!(
                findings.iter().any(|f| f.rule == "engine-panic-path"),
                "{needle}: {findings:?}"
            );
        }
    }

    #[test]
    fn fault_stream_fires_only_in_the_fault_plane() {
        let src = "fn decide(seed: u64) -> bool { seed ^ self.master_seed != 0 }\n";
        assert_eq!(
            rules_of(&lint_source("crates/netsim/src/faults.rs", src)),
            vec!["fault-stream"]
        );
        // The same code elsewhere in netsim is someone else's business.
        assert!(lint_source("crates/netsim/src/radio.rs", src).is_empty());
        // Tests inside faults.rs may exercise cross-seed behavior.
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn f(master_seed: u64) -> u64 { master_seed }\n}\n";
        assert!(lint_source("crates/netsim/src/faults.rs", test_src).is_empty());
        // Doc comments naming the needles do not fire.
        let doc =
            "/// Independent of `master_seed`: replay under many wake schedules.\nfn f() {}\n";
        assert!(lint_source("crates/netsim/src/faults.rs", doc).is_empty());
    }

    #[test]
    fn pragma_suppresses_same_line_and_next_line() {
        let same = "fn f() { x.unwrap(); } // lint:allow(bare-unwrap) -- init-only path\n";
        assert!(lint_source("crates/core/src/x.rs", same).is_empty());
        let above = "// lint:allow(bare-unwrap) -- init-only path\nfn f() { x.unwrap(); }\n";
        assert!(lint_source("crates/core/src/x.rs", above).is_empty());
        // The pragma only covers its own rule.
        let wrong = "// lint:allow(wall-clock) -- misdirected\nfn f() { x.unwrap(); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/x.rs", wrong)),
            vec!["bare-unwrap"]
        );
    }

    #[test]
    fn bad_pragmas_are_reported() {
        let unknown = "// lint:allow(made-up-rule) -- whatever\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/x.rs", unknown)),
            vec!["bad-pragma"]
        );
        let reasonless = "// lint:allow(bare-unwrap)\nfn f() { x.unwrap(); }\n";
        let findings = lint_source("crates/core/src/x.rs", reasonless);
        // Reported as bad AND not honored.
        assert_eq!(rules_of(&findings), vec!["bad-pragma", "bare-unwrap"]);
    }

    #[test]
    fn comments_and_doc_comments_do_not_fire() {
        let src = "//! Example: `println!(\"{}\", x)` and HashMap talk.\n// std::time discussion\nfn f() {}\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn trailing_comment_needle_does_not_fire() {
        let src = "fn f() {} // HashMap would be wrong here\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn format_string_braces_do_not_break_region_tracking() {
        // The "{{" inside the test's string must not make the tracker
        // believe the test region never closes.
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let s = format!(\"{{\"); }\n}\nfn prod() { x.unwrap(); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/x.rs", src)),
            vec!["bare-unwrap"]
        );
    }

    #[test]
    fn cfg_test_single_item_does_not_swallow_the_file() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() { x.unwrap(); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/x.rs", src)),
            vec!["bare-unwrap"]
        );
    }

    #[test]
    fn finding_display_is_file_line_rule() {
        let f = Finding {
            file: "crates/core/src/x.rs".into(),
            line: 3,
            rule: "bare-unwrap",
            message: "m".into(),
        };
        assert_eq!(f.to_string(), "crates/core/src/x.rs:3: bare-unwrap: m");
    }
}
