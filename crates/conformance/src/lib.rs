//! The static half of model conformance: a repo-specific source
//! analyzer.
//!
//! The paper's guarantees (Section 1.1) and every number in
//! `EXPERIMENTS.md` rest on the simulation being a *deterministic*
//! implementation of the sleeping model — and since the sharded send
//! half-step put real threads inside the kernel, on that parallelism
//! being confined to provably disjoint state. This crate enforces the
//! source hygiene that keeps both true; the dynamic half (the trace
//! auditor) lives in `netsim::validate`. No external dependencies: the
//! analyzer is a real tokenizer ([`lexer`]) plus a lightweight scope
//! tracker ([`scope`]), tuned to this workspace's idioms rather than
//! general Rust. Tokens, not line regexes: string literals, char
//! literals, raw strings, and nested block comments can never be
//! mistaken for code, and `use … as` aliases resolve back to the names
//! the rules lint.
//!
//! # Rules
//!
//! | rule | scope | what it forbids |
//! |------|-------|-----------------|
//! | `hash-container` | netsim, core, bench, lowerbound, root (tests included) | `HashMap`/`HashSet` (aliases resolved): iteration order is randomized per process, which has already produced a real nondeterminism bug (merge-depth BFS in `ablations.rs`) |
//! | `wall-clock` | every crate, non-test | `std::time`, `SystemTime`, `Instant::now`, `thread_rng`: ambient nondeterminism outside the vendored, seeded shims |
//! | `print-in-lib` | every crate, non-bin, non-test | `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!`: library code must return strings; only binaries print |
//! | `bare-unwrap` | netsim, core, non-test | `.unwrap()` with no message: hot-path panics must be typed errors or `.expect("reason")` documenting the invariant |
//! | `engine-panic-path` | `netsim/src/engine.rs`, `netsim/src/sim.rs`, non-test | any panic machinery (`unwrap`, `expect`, `panic!`, `unreachable!`, …): the executor hot path returns `SimError`, never panics |
//! | `fault-stream` | `netsim/src/faults.rs`, non-test | touching any RNG source other than the plan's own `fault_seed` (`master_seed`, `rng_seed`, `thread_rng`, `SmallRng`): fault decisions must be a pure function of `(fault_seed, tag, round, edge)` so both executors reach identical verdicts and `run --json` replays exactly |
//! | `shard-safety` | lane-executed code, non-test | shared-mutable primitives (`Mutex`, `RwLock`, `Atomic*`, `Cell`, `RefCell`, `UnsafeCell`, `OnceLock`/`OnceCell`/`LazyLock`/`LazyCell`, `thread_local!`, `static mut`, `mpsc`) and unordered parallel iteration (`rayon`, `par_iter` & friends): shard workers may touch only disjoint state, merged in lane order |
//! | `determinism` | netsim, core, graphlib, lowerbound + every `Protocol` impl, non-test | `f32`/`f64` types, casts, and float-shaped literals (weights are `u64`; float creep is the classic way fingerprints rot) and `sort_unstable_by`/`sort_unstable_by_key` (tied keys reorder across toolchains; plain `sort_unstable` on the values themselves is fine — equal values are indistinguishable) |
//! | `bad-pragma` | everywhere | a `lint:allow` pragma naming an unknown rule or missing its ` -- reason` |
//! | `stale-pragma` | everywhere | a well-formed `lint:allow` that suppresses nothing: the code it covered is gone, so the waiver must go too |
//!
//! **Lane-executed code** is everything a shard worker can run during
//! the parallel send half-step: all of `netsim` (the kernel, drivers,
//! and executor machinery), `mst-core` except the orchestration layer
//! above the kernel (`exec.rs`, `runner.rs`, `registry.rs`), and the
//! body of *any* `impl … Protocol for …` block wherever it lives
//! (protocol `send` runs inside shard workers — the scope tracker marks
//! these blocks, so a bench workload protocol is held to the same rule
//! as a netsim one).
//!
//! `graphlib` is deliberately outside the `hash-container` scope: its
//! hash sets back membership-only rejection sampling (insert/contains,
//! order never observed), and its generators are seeded. It *is* inside
//! the `determinism` scope — graph weights and MST references are
//! deterministic state.
//!
//! # Allow pragma lifecycle
//!
//! A finding is suppressed by a pragma on the same line or on a comment
//! line directly above, naming the rule and giving a reason:
//!
//! ```text
//! // lint:allow(wall-clock) -- throughput report needs real elapsed time
//! let started = std::time::Instant::now();
//! ```
//!
//! The lifecycle is add → justify → stale-detected → remove: a pragma
//! with an unknown rule name or without the ` -- reason` tail is
//! reported (`bad-pragma`) and **not** honored; a well-formed pragma
//! that no longer suppresses anything is reported (`stale-pragma`) so
//! waivers cannot outlive the code they excused. The full inventory of
//! active pragmas is auditable via `conformance-lint --pragmas`.
//!
//! # Machine-readable findings
//!
//! [`render_findings_json`] serializes findings into a byte-deterministic
//! artifact (fixed key order, findings sorted by file/line/rule/message,
//! no timestamps or absolute paths). CI regenerates it and `cmp`s against
//! the committed zero-findings baseline `conformance-baseline.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod scope;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use lexer::{Tok, TokKind};

/// Names of every rule the analyzer knows, in report order.
pub const RULE_NAMES: &[&str] = &[
    "hash-container",
    "wall-clock",
    "print-in-lib",
    "bare-unwrap",
    "engine-panic-path",
    "fault-stream",
    "shard-safety",
    "determinism",
    "bad-pragma",
    "stale-pragma",
];

/// Crates whose sources are checked for `hash-container` (directory names
/// under `crates/`, plus `sleeping-mst` for the root package).
const HASH_SCOPE: &[&str] = &["netsim", "core", "bench", "lowerbound", "sleeping-mst"];

/// Crates whose non-test sources are checked for `bare-unwrap`.
const UNWRAP_SCOPE: &[&str] = &["netsim", "core"];

/// Crates whose non-test sources are checked for `determinism`: the ones
/// that own deterministic simulation state. `bench` and the root crate
/// are excluded — they fit exponents and render reports, where floats
/// are the point — but their `Protocol` impls are still in scope via the
/// scope tracker.
const DET_SCOPE: &[&str] = &["netsim", "core", "graphlib", "lowerbound"];

/// `mst-core` files *above* the kernel (spawn/capture/registry
/// orchestration) — not lane-executed, so outside `shard-safety`. The
/// panic-capture `thread_local!` in `exec.rs` is the legitimate use this
/// carve-out exists for.
const CORE_NON_LANE: &[&str] = &["exec.rs", "runner.rs", "registry.rs"];

/// Shared-mutable primitives forbidden in lane-executed code.
const SHARED_MUTABLE: &[&str] = &[
    "Mutex",
    "RwLock",
    "Cell",
    "RefCell",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "LazyCell",
    "LazyLock",
    "AtomicBool",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicPtr",
    "mpsc",
];

/// Unordered-parallel-iteration markers forbidden in lane-executed code.
const PARALLEL_ITER: &[&str] = &[
    "rayon",
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_bridge",
    "par_chunks",
];

/// One lint finding, reported as `file:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-indexed line number.
    pub line: usize,
    /// The violated rule (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One active, well-formed `lint:allow` pragma, for the `--pragmas`
/// inventory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PragmaEntry {
    /// Workspace-relative path of the file carrying the pragma.
    pub file: String,
    /// 1-indexed line of the pragma comment.
    pub line: usize,
    /// The rule it waives.
    pub rule: String,
    /// The justification after ` -- `.
    pub reason: String,
}

impl fmt::Display for PragmaEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.reason
        )
    }
}

/// How a file is classified for rule scoping, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FileCtx<'a> {
    /// Directory name under `crates/`, or `sleeping-mst` for the root
    /// package's `src/`.
    crate_name: &'a str,
    /// Binary target (`src/bin/…` or `src/main.rs`): prints are its job.
    is_bin: bool,
    /// The executor hot path held to the zero-panic rule.
    is_engine_hot_path: bool,
    /// The fault-decision module: its randomness must derive only from
    /// the plan's own `fault_seed`, never the protocol RNG streams.
    is_fault_plane: bool,
    /// Lane-executed file: every line is in `shard-safety` scope (the
    /// kernel, drivers, and protocol-state modules a shard worker runs).
    is_lane_file: bool,
    /// Deterministic-state crate: every non-test line is in
    /// `determinism` scope.
    is_det_scope: bool,
}

fn classify(path: &str) -> FileCtx<'_> {
    let crate_name = match path.find("crates/") {
        Some(i) => {
            let rest = &path[i + "crates/".len()..];
            rest.split('/').next().unwrap_or("")
        }
        None if path.starts_with("src/") || path.contains("/src/") => "sleeping-mst",
        None => "",
    };
    let file_name = path.rsplit('/').next().unwrap_or(path);
    let is_bin = path.contains("/bin/") || path.ends_with("main.rs");
    FileCtx {
        crate_name,
        is_bin,
        is_engine_hot_path: path.ends_with("crates/netsim/src/engine.rs")
            || path.ends_with("crates/netsim/src/sim.rs")
            || path == "crates/netsim/src/engine.rs"
            || path == "crates/netsim/src/sim.rs",
        is_fault_plane: path.ends_with("crates/netsim/src/faults.rs")
            || path == "crates/netsim/src/faults.rs",
        is_lane_file: (crate_name == "netsim" && !is_bin)
            || (crate_name == "core" && !is_bin && !CORE_NON_LANE.contains(&file_name)),
        is_det_scope: DET_SCOPE.contains(&crate_name),
    }
}

/// A parsed `lint:allow` pragma occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PragmaSite {
    /// 1-indexed line of the pragma text.
    line: usize,
    rule: String,
    reason: String,
    /// Known rule name *and* has a reason (honored iff true).
    valid: bool,
    /// Suppressed at least one finding in this run.
    used: bool,
}

/// Extracts a `lint:allow(<rule>) -- reason` pragma from one line of
/// comment text, if any.
fn parse_pragma(line: &str) -> Option<(String, Option<String>)> {
    let start = line.find("lint:allow(")?;
    let after = &line[start + "lint:allow(".len()..];
    let close = after.find(')')?;
    let rule = after[..close].trim().to_string();
    let tail = &after[close + 1..];
    let reason = tail
        .trim_start()
        .strip_prefix("--")
        .map(str::trim)
        .filter(|r| !r.is_empty())
        .map(|r| {
            // A pragma inside a block comment must not swallow the
            // comment terminator into its reason.
            r.trim_end_matches("*/").trim_end().to_string()
        })
        .filter(|r| !r.is_empty());
    Some((rule, reason))
}

/// Per-file analysis state shared by the lint and the pragma inventory.
struct Analysis<'a> {
    toks: Vec<Tok<'a>>,
    scopes: scope::ScopeMap,
    /// `line_toks[l]` = indices of the code tokens starting on line `l`
    /// (1-indexed; index 0 unused).
    line_toks: Vec<Vec<usize>>,
    pragmas: Vec<PragmaSite>,
    /// `coverage[l]` = pragma indices covering line `l`.
    coverage: Vec<Vec<usize>>,
    line_count: usize,
}

fn analyze(source: &str) -> Analysis<'_> {
    let toks = lexer::lex(source);
    let scopes = scope::analyze(&toks);
    let line_count = source.lines().count();
    let mut line_toks: Vec<Vec<usize>> = vec![Vec::new(); line_count + 2];
    for (i, t) in toks.iter().enumerate() {
        if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let l = (t.line as usize).min(line_count + 1);
        line_toks[l].push(i);
    }
    // Pragmas live in comment tokens only: a string literal spelling
    // `lint:allow(…)` is data, not a waiver.
    let mut pragmas = Vec::new();
    for t in &toks {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        for (off, text) in t.text.lines().enumerate() {
            if let Some((rule, reason)) = parse_pragma(text) {
                let valid = RULE_NAMES.contains(&rule.as_str()) && reason.is_some();
                pragmas.push(PragmaSite {
                    line: t.line as usize + off,
                    rule,
                    reason: reason.unwrap_or_default(),
                    valid,
                    used: false,
                });
            }
        }
    }
    let mut coverage: Vec<Vec<usize>> = vec![Vec::new(); line_count + 2];
    for (idx, p) in pragmas.iter().enumerate() {
        if !p.valid {
            continue;
        }
        if p.line < coverage.len() {
            coverage[p.line].push(idx);
        }
        // A pragma on a pure comment line also covers the line below.
        let own_line_has_code = line_toks.get(p.line).is_some_and(|v| !v.is_empty());
        if !own_line_has_code && p.line + 1 < coverage.len() {
            coverage[p.line + 1].push(idx);
        }
    }
    Analysis {
        toks,
        scopes,
        line_toks,
        pragmas,
        coverage,
        line_count,
    }
}

// --- token-sequence matchers ------------------------------------------

/// `true` when `toks[i]` is the ident `name`.
fn is_ident(toks: &[&Tok<'_>], i: usize, name: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == name)
}

/// `true` when `toks[i]` is the punct `c`.
fn is_punct(toks: &[&Tok<'_>], i: usize, c: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == c)
}

/// `.name(` at position `i` (the `.`); `closed` additionally requires
/// the immediate `)` of a zero-argument call.
fn is_method_call(toks: &[&Tok<'_>], i: usize, name: &str, closed: bool) -> bool {
    is_punct(toks, i, ".")
        && is_ident(toks, i + 1, name)
        && is_punct(toks, i + 2, "(")
        && (!closed || is_punct(toks, i + 3, ")"))
}

/// `a::b` starting at position `i`.
fn is_path2(toks: &[&Tok<'_>], i: usize, a: &str, b: &str) -> bool {
    is_ident(toks, i, a)
        && is_punct(toks, i + 1, ":")
        && is_punct(toks, i + 2, ":")
        && is_ident(toks, i + 3, b)
}

/// `name!` at position `i`.
fn is_macro(toks: &[&Tok<'_>], i: usize, name: &str) -> bool {
    is_ident(toks, i, name) && is_punct(toks, i + 1, "!")
}

/// Lints one source file. `path` is the workspace-relative path (used for
/// rule scoping and in findings); `source` its full contents.
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    let ctx = classify(path);
    if ctx.crate_name == "conformance" {
        // The analyzer's own sources and fixtures mention every needle.
        return Vec::new();
    }

    let mut analysis = analyze(source);
    let mut findings = Vec::new();

    // Malformed pragmas are findings themselves (and never honored).
    for p in &analysis.pragmas {
        if p.valid {
            continue;
        }
        if !RULE_NAMES.contains(&p.rule.as_str()) {
            findings.push(Finding {
                file: path.to_string(),
                line: p.line,
                rule: "bad-pragma",
                message: format!(
                    "unknown rule '{}' (known: {})",
                    p.rule,
                    RULE_NAMES.join(", ")
                ),
            });
        } else {
            findings.push(Finding {
                file: path.to_string(),
                line: p.line,
                rule: "bad-pragma",
                message: format!(
                    "pragma for '{}' lacks a reason; write `lint:allow({}) -- why`",
                    p.rule, p.rule
                ),
            });
        }
    }

    // Rule pass, line by line over code tokens.
    for line in 1..=analysis.line_count {
        let idxs = std::mem::take(&mut analysis.line_toks[line]);
        if idxs.is_empty() {
            analysis.line_toks[line] = idxs;
            continue;
        }
        let toks: Vec<&Tok<'_>> = idxs.iter().map(|&i| &analysis.toks[i]).collect();
        let in_test = analysis.scopes.in_test[idxs[0]];
        let in_proto = idxs.iter().any(|&i| analysis.scopes.in_protocol_impl[i]);
        let aliases = &analysis.scopes.aliases;
        let resolve = |name: &str| -> String {
            aliases
                .get(name)
                .cloned()
                .unwrap_or_else(|| name.to_string())
        };

        // (rule, message) matches for this line, at most one per rule.
        let mut matched: Vec<(&'static str, String)> = Vec::new();
        let hit =
            |rule: &'static str, message: String, matched: &mut Vec<(&'static str, String)>| {
                if !matched.iter().any(|(r, _)| *r == rule) {
                    matched.push((rule, message));
                }
            };

        // hash-container: tests included — trace-pinning and differential
        // tests are exactly where iteration order corrupts expectations.
        if HASH_SCOPE.contains(&ctx.crate_name) {
            for t in &toks {
                if t.kind == TokKind::Ident {
                    let r = resolve(t.text);
                    if r == "HashMap" || r == "HashSet" {
                        hit(
                            "hash-container",
                            "std hash containers iterate in randomized order; use \
                             BTreeMap/BTreeSet or sort the keys"
                                .to_string(),
                            &mut matched,
                        );
                    }
                }
            }
        }

        if !in_test {
            if !ctx.crate_name.is_empty() {
                let wall = (0..toks.len()).any(|i| {
                    is_path2(&toks, i, "std", "time")
                        || is_ident(&toks, i, "SystemTime")
                        || (is_path2(&toks, i, "Instant", "now") && is_punct(&toks, i + 4, "("))
                        || is_ident(&toks, i, "thread_rng")
                });
                if wall {
                    hit(
                        "wall-clock",
                        "ambient time/randomness breaks run reproducibility; derive \
                         everything from the seeded shims"
                            .to_string(),
                        &mut matched,
                    );
                }
            }

            if !ctx.crate_name.is_empty() && !ctx.is_bin {
                let prints = (0..toks.len()).any(|i| {
                    ["println", "eprintln", "print", "eprint", "dbg"]
                        .iter()
                        .any(|m| is_macro(&toks, i, m))
                });
                if prints {
                    hit(
                        "print-in-lib",
                        "library code must not print; return a String and let the binary \
                         emit it"
                            .to_string(),
                        &mut matched,
                    );
                }
            }

            if UNWRAP_SCOPE.contains(&ctx.crate_name)
                && (0..toks.len()).any(|i| is_method_call(&toks, i, "unwrap", true))
            {
                hit(
                    "bare-unwrap",
                    "unreasoned panic in protocol/engine code; use a typed error or \
                     .expect(\"invariant\")"
                        .to_string(),
                    &mut matched,
                );
            }

            if ctx.is_engine_hot_path {
                let panics = (0..toks.len()).any(|i| {
                    is_method_call(&toks, i, "unwrap", true)
                        || is_method_call(&toks, i, "expect", false)
                        || ["panic", "unreachable", "todo", "unimplemented"]
                            .iter()
                            .any(|m| is_macro(&toks, i, m))
                });
                if panics {
                    hit(
                        "engine-panic-path",
                        "the executor hot path must return SimError, never panic".to_string(),
                        &mut matched,
                    );
                }
            }

            if ctx.is_fault_plane {
                let tainted = toks.iter().any(|t| {
                    t.kind == TokKind::Ident
                        && ["master_seed", "rng_seed", "thread_rng", "SmallRng"].contains(&t.text)
                });
                if tainted {
                    hit(
                        "fault-stream",
                        "fault decisions must derive only from the plan's fault_seed (a \
                         pure function of (fault_seed, tag, round, edge)); mixing in \
                         protocol RNG streams breaks replay and executor agreement"
                            .to_string(),
                        &mut matched,
                    );
                }
            }

            if ctx.is_lane_file || in_proto {
                for (i, t) in toks.iter().enumerate() {
                    if t.kind != TokKind::Ident {
                        continue;
                    }
                    let r = resolve(t.text);
                    if SHARED_MUTABLE.contains(&r.as_str()) {
                        hit(
                            "shard-safety",
                            format!(
                                "shared-mutable primitive `{r}` in lane-executed code; shard \
                                 workers must touch only disjoint state, merged in lane \
                                 order (DESIGN.md, \"Memory layout & sharding\")"
                            ),
                            &mut matched,
                        );
                    } else if PARALLEL_ITER.contains(&r.as_str()) {
                        hit(
                            "shard-safety",
                            format!(
                                "unordered parallel iteration (`{r}`) in lane-executed \
                                 code; lane order is the determinism contract — partition \
                                 explicitly and merge in lane order"
                            ),
                            &mut matched,
                        );
                    } else if is_macro(&toks, i, "thread_local") {
                        hit(
                            "shard-safety",
                            "`thread_local!` state in lane-executed code diverges per \
                             shard worker; keep per-lane state in ShardScratch"
                                .to_string(),
                            &mut matched,
                        );
                    } else if is_ident(&toks, i, "static") && is_ident(&toks, i + 1, "mut") {
                        hit(
                            "shard-safety",
                            "`static mut` in lane-executed code is a data race waiting for \
                             a second shard; keep state in the kernel's buffers"
                                .to_string(),
                            &mut matched,
                        );
                    }
                }
            }

            if ctx.is_det_scope || in_proto {
                for (i, t) in toks.iter().enumerate() {
                    match t.kind {
                        TokKind::Ident if t.text == "f32" || t.text == "f64" => {
                            hit(
                                "determinism",
                                format!(
                                    "`{}` in deterministic-state code; weights and stats \
                                     are u64 — float creep rots execution fingerprints \
                                     across toolchains",
                                    t.text
                                ),
                                &mut matched,
                            );
                        }
                        TokKind::Float => {
                            hit(
                                "determinism",
                                format!(
                                    "float literal `{}` in deterministic-state code; \
                                     weights and stats are u64 — float creep rots \
                                     execution fingerprints across toolchains",
                                    t.text
                                ),
                                &mut matched,
                            );
                        }
                        TokKind::Ident
                            if (t.text == "sort_unstable_by"
                                || t.text == "sort_unstable_by_key")
                                && is_punct(&toks, i + 1, "(") =>
                        {
                            hit(
                                "determinism",
                                format!(
                                    "`{}` can reorder tied keys differently across \
                                     toolchains; use a total key, a stable sort, or a \
                                     pragma justifying key distinctness",
                                    t.text
                                ),
                                &mut matched,
                            );
                        }
                        _ => {}
                    }
                }
            }
        }

        for (rule, message) in matched {
            // Every covering pragma naming the rule is "used" — a belt-
            // and-braces double waiver is redundant, not stale.
            let covering: Vec<usize> = analysis.coverage[line]
                .iter()
                .copied()
                .filter(|&p| analysis.pragmas[p].rule == rule)
                .collect();
            if !covering.is_empty() {
                for p in covering {
                    analysis.pragmas[p].used = true;
                }
            } else {
                findings.push(Finding {
                    file: path.to_string(),
                    line,
                    rule,
                    message,
                });
            }
        }
        analysis.line_toks[line] = idxs;
    }

    // Stale-pragma pass: a well-formed pragma that suppressed nothing is
    // itself a finding — unless a `stale-pragma` pragma covers it (which
    // then counts as used; `stale-pragma` pragmas have no meta-waiver).
    for i in 0..analysis.pragmas.len() {
        let (line, rule, used, valid) = {
            let p = &analysis.pragmas[i];
            (p.line, p.rule.clone(), p.used, p.valid)
        };
        if !valid || used || rule == "stale-pragma" {
            continue;
        }
        let waivers: Vec<usize> = analysis
            .coverage
            .get(line)
            .into_iter()
            .flatten()
            .copied()
            .filter(|&p| analysis.pragmas[p].rule == "stale-pragma")
            .collect();
        if !waivers.is_empty() {
            for w in waivers {
                analysis.pragmas[w].used = true;
            }
        } else {
            findings.push(Finding {
                file: path.to_string(),
                line,
                rule: "stale-pragma",
                message: format!(
                    "pragma for '{rule}' suppresses nothing; the code it excused is \
                     gone — remove the waiver"
                ),
            });
        }
    }
    for p in &analysis.pragmas {
        if p.valid && !p.used && p.rule == "stale-pragma" {
            findings.push(Finding {
                file: path.to_string(),
                line: p.line,
                rule: "stale-pragma",
                message: "pragma for 'stale-pragma' suppresses nothing; the waiver it \
                          excused is gone — remove it"
                    .to_string(),
            });
        }
    }

    sort_findings(&mut findings);
    findings
}

/// Stable report order: line, then rule (in [`RULE_NAMES`] order), then
/// message — byte-deterministic given identical sources.
fn sort_findings(findings: &mut [Finding]) {
    let rank = |rule: &str| {
        RULE_NAMES
            .iter()
            .position(|r| *r == rule)
            .unwrap_or(usize::MAX)
    };
    findings.sort_by(|a, b| {
        (a.line, rank(a.rule), &a.message).cmp(&(b.line, rank(b.rule), &b.message))
    });
}

/// Extracts the active, well-formed pragmas of one file, sorted by line.
/// Malformed pragmas are lint findings, not inventory entries.
pub fn pragmas_in_source(path: &str, source: &str) -> Vec<PragmaEntry> {
    if classify(path).crate_name == "conformance" {
        return Vec::new();
    }
    let analysis = analyze(source);
    analysis
        .pragmas
        .into_iter()
        .filter(|p| p.valid)
        .map(|p| PragmaEntry {
            file: path.to_string(),
            line: p.line,
            rule: p.rule,
            reason: p.reason,
        })
        .collect()
}

/// Walks `root` and lints every `src/**/*.rs` file of the workspace (root
/// package and member crates), skipping `vendor/`, `target/`, `.git`, and
/// the conformance crate itself **at any path depth**. Files are visited
/// in sorted path order, so output is deterministic.
///
/// # Errors
///
/// Propagates I/O failures (unreadable directories or files).
pub fn lint_tree(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for (rel_str, source) in read_workspace_sources(root)? {
        findings.extend(lint_source(&rel_str, &source));
    }
    Ok(findings)
}

/// Walks `root` like [`lint_tree`] and collects the pragma inventory:
/// every active `lint:allow` with file, rule, and reason, sorted by
/// (file, line) — waivers auditable at a glance.
///
/// # Errors
///
/// Propagates I/O failures (unreadable directories or files).
pub fn pragma_tree(root: &Path) -> io::Result<Vec<PragmaEntry>> {
    let mut entries = Vec::new();
    for (rel_str, source) in read_workspace_sources(root)? {
        entries.extend(pragmas_in_source(&rel_str, &source));
    }
    Ok(entries)
}

fn read_workspace_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    collect_rs_files(root, PathBuf::new(), &mut files)?;
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for rel in &files {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let source = fs::read_to_string(root.join(rel))?;
        out.push((rel_str, source));
    }
    Ok(out)
}

/// Directory names never descended into, checked per path component —
/// a `target/` or `vendor/` nested anywhere (a crate-local build dir, a
/// vendored shim inside a member) is skipped exactly like the top-level
/// ones, so `lint_tree` run from the workspace root can never wander
/// into build output or vendored sources.
fn skip_dir_component(name: &str) -> bool {
    matches!(name, "vendor" | "target" | ".git" | "conformance")
}

fn collect_rs_files(root: &Path, rel: PathBuf, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let dir = root.join(&rel);
    let mut entries: Vec<_> = fs::read_dir(&dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let sub = rel.join(name.as_ref());
        if entry.file_type()?.is_dir() {
            if skip_dir_component(name.as_ref()) {
                continue;
            }
            collect_rs_files(root, sub, out)?;
        } else if name.ends_with(".rs") {
            let sub_str = sub.to_string_lossy().replace('\\', "/");
            if sub_str.starts_with("src/") || sub_str.contains("/src/") {
                out.push(sub);
            }
        }
    }
    Ok(())
}

// --- byte-deterministic JSON artifacts --------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes findings into the byte-deterministic artifact CI diffs
/// against the committed `conformance-baseline.json`: fixed key order,
/// findings sorted by (file, line, rule, message), a trailing newline,
/// and nothing environment-dependent (no paths, no timestamps).
#[must_use]
pub fn render_findings_json(findings: &[Finding]) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    let rank = |rule: &str| {
        RULE_NAMES
            .iter()
            .position(|r| *r == rule)
            .unwrap_or(usize::MAX)
    };
    sorted.sort_by(|a, b| {
        (&a.file, a.line, rank(a.rule), &a.message).cmp(&(
            &b.file,
            b.line,
            rank(b.rule),
            &b.message,
        ))
    });
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 1,\n  \"tool\": \"conformance-lint\",\n  \"rules\": [");
    for (i, rule) in RULE_NAMES.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('"');
        out.push_str(rule);
        out.push('"');
    }
    out.push_str("],\n");
    out.push_str(&format!(
        "  \"total\": {},\n  \"findings\": [",
        sorted.len()
    ));
    for (i, f) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&format!(
            "{{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.rule,
            json_escape(&f.message)
        ));
    }
    if !sorted.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Serializes the pragma inventory as a byte-deterministic JSON artifact
/// (same conventions as [`render_findings_json`]).
#[must_use]
pub fn render_pragmas_json(entries: &[PragmaEntry]) -> String {
    let mut sorted: Vec<&PragmaEntry> = entries.iter().collect();
    sorted.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 1,\n  \"tool\": \"conformance-pragmas\",\n");
    out.push_str(&format!("  \"total\": {},\n  \"pragmas\": [", sorted.len()));
    for (i, p) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&format!(
            "{{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"reason\": \"{}\"}}",
            json_escape(&p.file),
            p.line,
            json_escape(&p.rule),
            json_escape(&p.reason)
        ));
    }
    if !sorted.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/netsim/src/engine.rs").crate_name, "netsim");
        assert!(classify("crates/netsim/src/engine.rs").is_engine_hot_path);
        assert!(!classify("crates/netsim/src/radio.rs").is_engine_hot_path);
        assert_eq!(classify("src/cli.rs").crate_name, "sleeping-mst");
        assert!(classify("crates/bench/src/bin/table1.rs").is_bin);
        assert!(!classify("crates/bench/src/lib.rs").is_bin);
        // Lane scope: all of netsim, core minus the orchestration layer.
        assert!(classify("crates/netsim/src/protocol.rs").is_lane_file);
        assert!(classify("crates/core/src/prim.rs").is_lane_file);
        assert!(!classify("crates/core/src/exec.rs").is_lane_file);
        assert!(!classify("crates/core/src/runner.rs").is_lane_file);
        assert!(!classify("crates/bench/src/lib.rs").is_lane_file);
        // Determinism scope: state-owning crates only.
        assert!(classify("crates/graphlib/src/mst.rs").is_det_scope);
        assert!(classify("crates/lowerbound/src/ring.rs").is_det_scope);
        assert!(!classify("crates/bench/src/report.rs").is_det_scope);
        assert!(!classify("src/cli.rs").is_det_scope);
    }

    #[test]
    fn hash_container_fires_in_scope_and_in_tests() {
        let src = "fn f() {\n    let m = std::collections::HashMap::new();\n}\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/x.rs", src)),
            vec!["hash-container"]
        );
        // graphlib is out of scope (membership-only use, documented).
        assert!(lint_source("crates/graphlib/src/x.rs", src).is_empty());
        // Tests are NOT exempt for this rule.
        let test_src = "#[cfg(test)]\nmod tests {\n    fn f() { let s = HashSet::new(); }\n}\n";
        assert_eq!(
            rules_of(&lint_source("crates/netsim/src/x.rs", test_src)),
            vec!["hash-container"]
        );
    }

    #[test]
    fn hash_container_resolves_use_aliases() {
        // The import line and the aliased usage line both fire: renaming
        // a linted container does not take it out of scope.
        let src = "use std::collections::HashMap as Map;\nfn f() { let m = Map::new(); }\n";
        let findings = lint_source("crates/core/src/x.rs", src);
        assert_eq!(
            rules_of(&findings),
            vec!["hash-container", "hash-container"]
        );
        assert_eq!(findings[0].line, 1);
        assert_eq!(findings[1].line, 2);
    }

    #[test]
    fn wall_clock_fires_outside_tests_only() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/bench/src/bin/table1.rs", src)),
            vec!["wall-clock"]
        );
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn f() { let t = std::time::Instant::now(); }\n}\n";
        assert!(lint_source("crates/bench/src/bin/table1.rs", test_src).is_empty());
    }

    #[test]
    fn print_in_lib_exempts_binaries() {
        let src = "fn f() { println!(\"hi\"); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/bench/src/lib.rs", src)),
            vec!["print-in-lib"]
        );
        assert!(lint_source("crates/bench/src/bin/table1.rs", src).is_empty());
    }

    #[test]
    fn bare_unwrap_scope_and_expect_distinction() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/x.rs", src)),
            vec!["bare-unwrap"]
        );
        // .expect with a reason is fine outside the engine hot path…
        let expect_src = "fn f() { x.expect(\"reason\"); }\n";
        assert!(lint_source("crates/core/src/x.rs", expect_src).is_empty());
        // …but not inside it.
        assert_eq!(
            rules_of(&lint_source("crates/netsim/src/engine.rs", expect_src)),
            vec!["engine-panic-path"]
        );
        // bench is outside the bare-unwrap scope.
        assert!(lint_source("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn engine_hot_path_rejects_all_panic_machinery() {
        for needle in ["a.unwrap();", "panic!(\"x\");", "unreachable!();"] {
            let src = format!("fn f() {{ {needle} }}\n");
            let findings = lint_source("crates/netsim/src/sim.rs", &src);
            assert!(
                findings.iter().any(|f| f.rule == "engine-panic-path"),
                "{needle}: {findings:?}"
            );
        }
    }

    #[test]
    fn fault_stream_fires_only_in_the_fault_plane() {
        let src = "fn decide(seed: u64) -> bool { seed ^ self.master_seed != 0 }\n";
        assert_eq!(
            rules_of(&lint_source("crates/netsim/src/faults.rs", src)),
            vec!["fault-stream"]
        );
        // The same code elsewhere in netsim is someone else's business.
        assert!(lint_source("crates/netsim/src/radio.rs", src).is_empty());
        // Tests inside faults.rs may exercise cross-seed behavior.
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn f(master_seed: u64) -> u64 { master_seed }\n}\n";
        assert!(lint_source("crates/netsim/src/faults.rs", test_src).is_empty());
        // Doc comments naming the needles do not fire.
        let doc =
            "/// Independent of `master_seed`: replay under many wake schedules.\nfn f() {}\n";
        assert!(lint_source("crates/netsim/src/faults.rs", doc).is_empty());
    }

    #[test]
    fn shard_safety_rejects_shared_mutable_in_lane_code() {
        for needle in [
            "let m = Mutex::new(0);",
            "let c = RefCell::new(0);",
            "let a = AtomicUsize::new(0);",
            "let (tx, rx) = mpsc::channel();",
        ] {
            let src = format!("fn f() {{ {needle} }}\n");
            let findings = lint_source("crates/netsim/src/protocol.rs", &src);
            assert_eq!(rules_of(&findings), vec!["shard-safety"], "{needle}");
        }
        let tl = "thread_local! { static X: u32 = 0; }\n";
        assert_eq!(
            rules_of(&lint_source("crates/netsim/src/engine.rs", tl)),
            vec!["shard-safety"]
        );
        let sm = "static mut COUNTER: u64 = 0;\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/prim.rs", sm)),
            vec!["shard-safety"]
        );
        let par = "fn f(v: &[u32]) { v.par_iter().for_each(drop); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/netsim/src/engine.rs", par)),
            vec!["shard-safety"]
        );
    }

    #[test]
    fn shard_safety_covers_protocol_impls_anywhere_and_aliases() {
        // A Protocol impl in bench is lane-executed: the engine calls its
        // send() from shard workers.
        let src =
            "impl Protocol for Wave {\n    fn send(&mut self) { let m = Mutex::new(0); }\n}\n";
        assert_eq!(
            rules_of(&lint_source("crates/bench/src/engine_panel.rs", src)),
            vec!["shard-safety"]
        );
        // Outside the impl, bench is not lane scope.
        let free = "fn f() { let m = Mutex::new(0); }\n";
        assert!(lint_source("crates/bench/src/engine_panel.rs", free).is_empty());
        // Renaming the primitive does not hide it.
        let aliased = "use std::sync::Mutex as Lock;\nfn f() { let m = Lock::new(0); }\n";
        let findings = lint_source("crates/netsim/src/protocol.rs", aliased);
        assert_eq!(rules_of(&findings), vec!["shard-safety", "shard-safety"]);
        // The orchestration layer above the kernel is exempt (panic
        // capture lives there).
        let tl = "std::thread_local! { static X: Cell<bool> = Cell::new(false); }\n";
        assert!(lint_source("crates/core/src/exec.rs", tl).is_empty());
    }

    #[test]
    fn determinism_rejects_floats_and_unstable_keyed_sorts() {
        for (needle, what) in [
            ("let x: f64 = y;", "type"),
            ("let x = n as f64;", "cast"),
            ("let x = 0.5;", "literal"),
            ("v.sort_unstable_by_key(|e| e.w);", "keyed sort"),
            ("v.sort_unstable_by(|a, b| a.cmp(b));", "comparator sort"),
        ] {
            let src = format!("fn f() {{ {needle} }}\n");
            let findings = lint_source("crates/core/src/x.rs", &src);
            assert_eq!(rules_of(&findings), vec!["determinism"], "{what}");
        }
        // Plain sort_unstable orders by the values themselves: equal
        // values are indistinguishable, so tie order cannot matter.
        let plain = "fn f(v: &mut [u32]) { v.sort_unstable(); }\n";
        assert!(lint_source("crates/core/src/x.rs", plain).is_empty());
        // Tests (bound assertions etc.) are exempt.
        let test_src = "#[cfg(test)]\nmod t {\n    fn f() { let b = 80.0 * (32f64).log2(); }\n}\n";
        assert!(lint_source("crates/core/src/x.rs", test_src).is_empty());
        // Reporting crates are out of scope…
        let report = "fn f(n: u64) -> f64 { n as f64 }\n";
        assert!(lint_source("crates/bench/src/report.rs", report).is_empty());
        assert!(lint_source("src/cli.rs", report).is_empty());
        // …except inside their Protocol impls.
        let proto = "impl Protocol for Wave {\n    fn send(&mut self) { let x = 0.5; }\n}\n";
        assert_eq!(
            rules_of(&lint_source("crates/bench/src/engine_panel.rs", proto)),
            vec!["determinism"]
        );
    }

    #[test]
    fn tokenizer_kills_string_and_comment_false_positives() {
        // Needles inside string literals are data, not code.
        let s = "fn f() { let s = \"HashMap // } Instant::now()\"; }\n";
        assert!(lint_source("crates/core/src/x.rs", s).is_empty());
        // Raw strings too.
        let r = "fn f() { let r = r#\"std::time \"quoted\" x.unwrap()\"#; }\n";
        assert!(lint_source("crates/core/src/x.rs", r).is_empty());
        // Nested block comments are comments to the end.
        let c = "/* outer /* inner */ x.unwrap(); std::time */\nfn f() {}\n";
        assert!(lint_source("crates/core/src/x.rs", c).is_empty());
        // A char-literal quote must not derail comment detection.
        let q = "fn f() { let q = '\"'; } // HashMap would be wrong here\n";
        assert!(lint_source("crates/core/src/x.rs", q).is_empty());
    }

    #[test]
    fn pragma_suppresses_same_line_and_next_line() {
        let same = "fn f() { x.unwrap(); } // lint:allow(bare-unwrap) -- init-only path\n";
        assert!(lint_source("crates/core/src/x.rs", same).is_empty());
        let above = "// lint:allow(bare-unwrap) -- init-only path\nfn f() { x.unwrap(); }\n";
        assert!(lint_source("crates/core/src/x.rs", above).is_empty());
        // The pragma only covers its own rule — and, unused, is stale.
        let wrong = "// lint:allow(wall-clock) -- misdirected\nfn f() { x.unwrap(); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/x.rs", wrong)),
            vec!["stale-pragma", "bare-unwrap"]
        );
    }

    #[test]
    fn bad_pragmas_are_reported() {
        let unknown = "// lint:allow(made-up-rule) -- whatever\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/x.rs", unknown)),
            vec!["bad-pragma"]
        );
        let reasonless = "// lint:allow(bare-unwrap)\nfn f() { x.unwrap(); }\n";
        let findings = lint_source("crates/core/src/x.rs", reasonless);
        // Reported as bad AND not honored.
        assert_eq!(rules_of(&findings), vec!["bad-pragma", "bare-unwrap"]);
    }

    #[test]
    fn stale_pragma_detection_and_waiver() {
        // A used pragma is never stale.
        let used = "// lint:allow(determinism) -- config-only bias\npub heads: f64,\n";
        assert!(lint_source("crates/core/src/x.rs", used).is_empty());
        // The needle was removed; the waiver must go too.
        let stale = "// lint:allow(determinism) -- config-only bias\npub heads: u64,\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/x.rs", stale)),
            vec!["stale-pragma"]
        );
        // A stale finding can itself be waived during migrations…
        let waived = "// lint:allow(stale-pragma) -- kept while the config lands\n\
                      // lint:allow(determinism) -- config-only bias\npub heads: u64,\n";
        assert!(lint_source("crates/core/src/x.rs", waived).is_empty());
        // …but an unused stale-pragma waiver is itself reported.
        let meta = "// lint:allow(stale-pragma) -- nothing underneath\nfn f() {}\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/x.rs", meta)),
            vec!["stale-pragma"]
        );
        // Pragma text inside a string literal is data, not a waiver.
        let in_str = "fn f() { let s = \"lint:allow(bare-unwrap) -- nope\"; }\n";
        assert!(lint_source("crates/core/src/x.rs", in_str).is_empty());
    }

    #[test]
    fn comments_and_doc_comments_do_not_fire() {
        let src = "//! Example: `println!(\"{}\", x)` and HashMap talk.\n// std::time discussion\nfn f() {}\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn trailing_comment_needle_does_not_fire() {
        let src = "fn f() {} // HashMap would be wrong here\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn format_string_braces_do_not_break_region_tracking() {
        // The "{{" inside the test's string must not make the tracker
        // believe the test region never closes.
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let s = format!(\"{{\"); }\n}\nfn prod() { x.unwrap(); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/x.rs", src)),
            vec!["bare-unwrap"]
        );
    }

    #[test]
    fn cfg_test_single_item_does_not_swallow_the_file() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() { x.unwrap(); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/x.rs", src)),
            vec!["bare-unwrap"]
        );
    }

    #[test]
    fn finding_display_is_file_line_rule() {
        let f = Finding {
            file: "crates/core/src/x.rs".into(),
            line: 3,
            rule: "bare-unwrap",
            message: "m".into(),
        };
        assert_eq!(f.to_string(), "crates/core/src/x.rs:3: bare-unwrap: m");
    }

    #[test]
    fn pragma_inventory_lists_active_waivers_only() {
        let src = "// lint:allow(determinism) -- config-only bias\npub heads: f64,\n\
                   // lint:allow(nonsense) -- not a rule\n\
                   fn f() { x.unwrap(); } // lint:allow(bare-unwrap) -- init-only\n";
        let entries = pragmas_in_source("crates/core/src/x.rs", src);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, "determinism");
        assert_eq!(entries[0].reason, "config-only bias");
        assert_eq!(entries[1].rule, "bare-unwrap");
        assert_eq!(entries[1].line, 4);
    }

    #[test]
    fn json_rendering_is_deterministic_and_escaped() {
        let findings = vec![
            Finding {
                file: "b.rs".into(),
                line: 2,
                rule: "determinism",
                message: "quote \" and backslash \\".into(),
            },
            Finding {
                file: "a.rs".into(),
                line: 9,
                rule: "shard-safety",
                message: "m".into(),
            },
        ];
        let one = render_findings_json(&findings);
        let two = render_findings_json(&findings);
        assert_eq!(one.as_bytes(), two.as_bytes());
        // Sorted by file first.
        assert!(one.find("a.rs").unwrap() < one.find("b.rs").unwrap());
        assert!(one.contains("quote \\\" and backslash \\\\"));
        assert!(one.ends_with("]\n}\n"));
        let empty = render_findings_json(&[]);
        assert!(empty.contains("\"total\": 0"));
        assert!(empty.contains("\"findings\": []"));
    }

    #[test]
    fn collect_skips_target_and_vendor_at_any_depth() {
        let base = std::env::temp_dir().join(format!("conformance-collect-{}", std::process::id()));
        let _ = fs::remove_dir_all(&base);
        for dir in [
            "crates/good/src",
            "crates/good/target/debug/build/x/src",
            "crates/vendorish/vendor/shim/src",
            "target/release/src",
            "vendor/rand/src",
        ] {
            fs::create_dir_all(base.join(dir)).expect("mk tree");
        }
        for file in [
            "crates/good/src/lib.rs",
            "crates/good/target/debug/build/x/src/gen.rs",
            "crates/vendorish/vendor/shim/src/lib.rs",
            "target/release/src/junk.rs",
            "vendor/rand/src/lib.rs",
        ] {
            fs::write(base.join(file), "fn f() {}\n").expect("write");
        }
        let mut files = Vec::new();
        collect_rs_files(&base, PathBuf::new(), &mut files).expect("walk");
        let names: Vec<String> = files
            .iter()
            .map(|p| p.to_string_lossy().replace('\\', "/"))
            .collect();
        assert_eq!(names, vec!["crates/good/src/lib.rs"], "{names:?}");
        let _ = fs::remove_dir_all(&base);
    }
}
