//! A minimal, dependency-free Rust tokenizer.
//!
//! The lint needs exactly enough lexical fidelity to never mistake a
//! string literal, char literal, raw string, or (nested) block comment
//! for code — the failure modes of the line-regex scanner this crate
//! started as. It is *not* a full Rust lexer: multi-character operators
//! come out as single [`TokKind::Punct`] tokens (`::` is two `:`s), and
//! keywords are ordinary [`TokKind::Ident`]s. Rules match on short token
//! sequences, so neither simplification loses information they need.
//!
//! What it does get right, because the rules depend on it:
//!
//! * string literals (`"…"`, `b"…"`) with escapes, spanning lines;
//! * raw strings (`r"…"`, `r#"…"#`, `br##"…"##`) with hash counting;
//! * char and byte-char literals (`'x'`, `'\n'`, `b'x'`) vs. lifetimes
//!   (`'a`, `'static`) — a `'` is a lifetime when the identifier run it
//!   introduces is not closed by another `'`;
//! * nested block comments (`/* /* … */ */`) with depth counting;
//! * raw identifiers (`r#match`);
//! * float literals (`1.0`, `1e9`, `2.5f64`) distinguished from integer
//!   literals — the `determinism` family flags float *forms*, and tuple
//!   field chains (`x.0.1`) must not read as floats.

use std::fmt;

/// Lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `fn`, `static`, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`), label included.
    Lifetime,
    /// String or byte-string literal, escapes resolved lexically only.
    Str,
    /// Raw (byte-)string literal (`r"…"`, `br#"…"#`).
    RawStr,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Integer literal (any radix, with or without suffix).
    Int,
    /// Float-shaped literal: fractional part, exponent, or `f32`/`f64`
    /// suffix. The `determinism` rule keys on this.
    Float,
    /// A single punctuation character (`::` is two `Punct` tokens).
    Punct,
    /// `// …` comment, doc comments included.
    LineComment,
    /// `/* … */` comment, nesting resolved, doc comments included.
    BlockComment,
}

/// One token: its class, exact source text, and 1-indexed start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok<'a> {
    /// Lexical class.
    pub kind: TokKind,
    /// Exact source slice of the token.
    pub text: &'a str,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

impl fmt::Display for Tok<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{:?}:{}", self.line, self.kind, self.text)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// The tokenizer state: a cursor over the source plus the current line.
struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s)
    }

    /// Consumes an identifier run starting at the cursor.
    fn eat_ident(&mut self) {
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// Consumes a `"…"`-style string body (opening quote already eaten).
    fn eat_str_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Consumes a raw-string body: `#`*n* then `"` already positioned at
    /// the first `#` or `"`; scans to `"` followed by *n* `#`s.
    fn eat_raw_str_body(&mut self) {
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            self.bump();
            hashes += 1;
        }
        if self.peek() != Some('"') {
            // `r#ident` raw identifier (hashes == 1, no quote): the `#`
            // was consumed; the caller lexes the identifier run next.
            return;
        }
        self.bump(); // opening quote
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                let mark = (self.pos, self.line);
                for _ in 0..hashes {
                    if self.peek() == Some('#') {
                        self.bump();
                    } else {
                        self.pos = mark.0;
                        self.line = mark.1;
                        continue 'scan;
                    }
                }
                break;
            }
        }
    }

    /// Consumes a block comment (the leading `/*` already eaten),
    /// honoring nesting.
    fn eat_block_comment(&mut self) {
        let mut depth = 1usize;
        while depth > 0 {
            if self.starts_with("/*") {
                self.bump();
                self.bump();
                depth += 1;
            } else if self.starts_with("*/") {
                self.bump();
                self.bump();
                depth -= 1;
            } else if self.bump().is_none() {
                break;
            }
        }
    }

    /// Consumes a numeric literal (first digit already eaten). Returns
    /// `true` when the literal is float-shaped. `after_dot` suppresses
    /// the fractional part so tuple-field chains (`x.0.1`) stay integral.
    fn eat_number(&mut self, first: char, after_dot: bool) -> bool {
        let mut float = false;
        if first == '0' && matches!(self.peek(), Some('x' | 'o' | 'b')) {
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
            return false;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        if !after_dot
            && self.peek() == Some('.')
            && self.peek2().is_some_and(|c| c.is_ascii_digit())
        {
            float = true;
            self.bump(); // '.'
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        if matches!(self.peek(), Some('e' | 'E'))
            && (self.peek2().is_some_and(|c| c.is_ascii_digit())
                || (matches!(self.peek2(), Some('+' | '-'))))
        {
            float = true;
            self.bump();
            if matches!(self.peek(), Some('+' | '-')) {
                self.bump();
            }
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        // Suffix (`u64`, `f32`, `usize`, …): an identifier run glued on.
        let suffix_start = self.pos;
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                self.bump();
            } else {
                break;
            }
        }
        let suffix = &self.src[suffix_start..self.pos];
        if suffix.starts_with("f32") || suffix.starts_with("f64") {
            float = true;
        }
        float
    }
}

/// Tokenizes `src`. Whitespace is dropped; comments are kept as tokens
/// (the pragma parser and test-region tracker need them positioned).
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    let mut lx = Lexer {
        src,
        pos: 0,
        line: 1,
    };
    let mut toks = Vec::new();
    let mut prev_code: Option<char> = None; // last non-comment punct, for `x.0.1`
    while let Some(c) = lx.peek() {
        let start = lx.pos;
        let line = lx.line;
        if c.is_whitespace() {
            lx.bump();
            continue;
        }
        let kind = if lx.starts_with("//") {
            while let Some(&b) = src.as_bytes().get(lx.pos) {
                if b == b'\n' {
                    break;
                }
                lx.pos += 1;
            }
            TokKind::LineComment
        } else if lx.starts_with("/*") {
            lx.bump();
            lx.bump();
            lx.eat_block_comment();
            TokKind::BlockComment
        } else if c == '"' {
            lx.bump();
            lx.eat_str_body();
            TokKind::Str
        } else if (c == 'r' && matches!(lx.peek2(), Some('"' | '#')))
            || (lx.starts_with("br\"") || lx.starts_with("br#"))
        {
            // Raw string — or a raw identifier (`r#match`), which
            // eat_raw_str_body detects and leaves for the ident path.
            lx.bump(); // r
            if lx.peek() == Some('r') {
                lx.bump(); // the 'r' of "br"
            }
            let body_start = lx.pos;
            lx.eat_raw_str_body();
            if lx.pos == body_start + 1 && !src[body_start..].starts_with('"') {
                // Raw identifier: `r#` consumed, identifier follows.
                lx.eat_ident();
                TokKind::Ident
            } else {
                TokKind::RawStr
            }
        } else if c == 'b' && matches!(lx.peek2(), Some('"')) {
            lx.bump();
            lx.bump();
            lx.eat_str_body();
            TokKind::Str
        } else if c == 'b' && matches!(lx.peek2(), Some('\'')) {
            lx.bump(); // b
            lx.bump(); // '
            if lx.peek() == Some('\\') {
                lx.bump();
            }
            lx.bump(); // the char
            if lx.peek() == Some('\'') {
                lx.bump();
            }
            TokKind::Char
        } else if c == '\'' {
            // Lifetime or char literal. `'X…` is a char literal exactly
            // when the run it introduces is closed by `'`; `'\…` always
            // is; anything else is a lifetime (or label).
            lx.bump();
            match lx.peek() {
                Some('\\') => {
                    lx.bump();
                    lx.bump();
                    while let Some(ch) = lx.peek() {
                        // Multi-char escapes: `'\u{1F600}'`, `'\x7f'`.
                        lx.bump();
                        if ch == '\'' {
                            break;
                        }
                    }
                    TokKind::Char
                }
                Some(n) if is_ident_start(n) => {
                    let run_start = lx.pos;
                    lx.eat_ident();
                    if lx.peek() == Some('\'') && lx.pos - run_start == n.len_utf8() {
                        lx.bump();
                        TokKind::Char
                    } else {
                        TokKind::Lifetime
                    }
                }
                Some(_) => {
                    // `'{'`, `'"'`, `' '` — single arbitrary char.
                    lx.bump();
                    if lx.peek() == Some('\'') {
                        lx.bump();
                    }
                    TokKind::Char
                }
                None => TokKind::Punct,
            }
        } else if c.is_ascii_digit() {
            lx.bump();
            if lx.eat_number(c, prev_code == Some('.')) {
                TokKind::Float
            } else {
                TokKind::Int
            }
        } else if is_ident_start(c) {
            lx.bump();
            lx.eat_ident();
            TokKind::Ident
        } else {
            lx.bump();
            TokKind::Punct
        };
        let text = &src[start..lx.pos];
        // Recompute line increments for multi-line tokens consumed via
        // raw pos arithmetic (the line-comment fast path never spans).
        if matches!(kind, TokKind::Punct) {
            prev_code = text.chars().next();
        } else if !matches!(kind, TokKind::LineComment | TokKind::BlockComment) {
            prev_code = None;
        }
        toks.push(Tok { kind, text, line });
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_hide_code_needles() {
        let toks = kinds(r#"let s = "HashMap // } {";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("HashMap")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && *t == "HashMap"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r##"let r = r#"Instant::now() "quoted" //x"# ;"##);
        assert!(toks.iter().any(|(k, _)| *k == TokKind::RawStr));
        assert!(!toks.iter().any(|(_, t)| *t == "Instant"));
        // Closing correctly: the `;` survives as punctuation.
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Punct && *t == ";"));
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let toks = kinds("let r#match = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && *t == "r#match"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* x.unwrap() */ still */ fn f() {}");
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert!(!toks.iter().any(|(_, t)| *t == "unwrap"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && *t == "fn"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = '{'; let q = '\"'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 3);
        // The brace inside the char literal is not punctuation.
        let braces = toks
            .iter()
            .filter(|(k, t)| *k == TokKind::Punct && (*t == "{" || *t == "}"))
            .count();
        assert_eq!(braces, 2, "{toks:?}");
    }

    #[test]
    fn static_lifetime_is_a_lifetime() {
        let toks = kinds("fn f() -> &'static str { \"x\" }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && *t == "'static"));
    }

    #[test]
    fn float_forms_vs_integers() {
        assert!(kinds("let x = 1.5;")
            .iter()
            .any(|(k, _)| *k == TokKind::Float));
        assert!(kinds("let x = 1e9;")
            .iter()
            .any(|(k, _)| *k == TokKind::Float));
        assert!(kinds("let x = 2f64;")
            .iter()
            .any(|(k, _)| *k == TokKind::Float));
        assert!(!kinds("let x = 15u64;")
            .iter()
            .any(|(k, _)| *k == TokKind::Float));
        assert!(!kinds("let x = 0xff;")
            .iter()
            .any(|(k, _)| *k == TokKind::Float));
        // Range and tuple-field chains stay integral.
        assert!(!kinds("for i in 0..10 {}")
            .iter()
            .any(|(k, _)| *k == TokKind::Float));
        assert!(!kinds("let y = x.0.1;")
            .iter()
            .any(|(k, _)| *k == TokKind::Float));
        // Method call on an integer literal.
        let toks = kinds("let m = 1.max(2);");
        assert!(!toks.iter().any(|(k, _)| *k == TokKind::Float));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && *t == "max"));
    }

    #[test]
    fn line_numbers_advance_through_multiline_tokens() {
        let src = "/*\n\n*/\nfn f() {\n  \"a\nb\"; x()\n}";
        let toks = lex(src);
        let f = toks.iter().find(|t| t.text == "fn").unwrap();
        assert_eq!(f.line, 4);
        let x = toks.iter().find(|t| t.text == "x").unwrap();
        assert_eq!(x.line, 6);
    }

    #[test]
    fn line_comment_keeps_text_and_line() {
        let toks = lex("fn f() {}\n// lint:allow(x) -- y\nfn g() {}");
        let c = toks
            .iter()
            .find(|t| t.kind == TokKind::LineComment)
            .unwrap();
        assert_eq!(c.line, 2);
        assert!(c.text.contains("lint:allow"));
    }
}
