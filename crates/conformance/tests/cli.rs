//! End-to-end tests of the `conformance-lint` binary: the exit-code
//! contract (0 clean / 1 findings / 2 I/O error), the byte-deterministic
//! `--json` artifact and its committed zero-findings baseline, and the
//! `--pragmas` inventory.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/conformance")
        .to_path_buf()
}

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn run_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_conformance-lint"))
        .args(args)
        .output()
        .expect("spawn conformance-lint")
}

#[test]
fn exit_0_on_a_clean_tree() {
    // A tree containing only in-literal/in-comment needles is clean: the
    // regression fixture for the old scanner's false positives, now also
    // pinning exit code 0.
    let clean = fixtures_root().join("crates/core");
    let tmp = std::env::temp_dir().join(format!("conformance-clean-{}", std::process::id()));
    let _ = fs::remove_dir_all(&tmp);
    fs::create_dir_all(tmp.join("crates/core/src")).expect("mk clean tree");
    for file in ["strings.rs", "allowed.rs"] {
        fs::copy(
            clean.join("src").join(file),
            tmp.join("crates/core/src").join(file),
        )
        .expect("copy fixture");
    }
    let out = run_lint(&[tmp.to_str().expect("utf-8 tmp path")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));
    let _ = fs::remove_dir_all(&tmp);
}

#[test]
fn exit_1_on_the_violation_fixtures() {
    let root = fixtures_root();
    let root = root.to_str().expect("utf-8 fixtures path");
    let out = run_lint(&[root]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    // Both new rule families reach the binary's report.
    assert!(text.contains("shard-safety"), "{text}");
    assert!(text.contains("determinism"), "{text}");
    assert!(text.contains("stale-pragma"), "{text}");
}

#[test]
fn exit_2_on_io_error_and_usage_error() {
    let out = run_lint(&["/nonexistent/conformance-root"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = run_lint(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn json_artifact_is_byte_identical_across_runs() {
    let root = fixtures_root();
    let root = root.to_str().expect("utf-8 fixtures path");
    let one = run_lint(&["--json", root]);
    let two = run_lint(&["--json", root]);
    assert_eq!(one.status.code(), Some(1));
    assert_eq!(
        one.stdout, two.stdout,
        "artifact must be byte-deterministic"
    );
    let text = String::from_utf8(one.stdout).expect("utf-8 artifact");
    assert!(text.starts_with("{\n  \"schema\": 1,"), "{text}");
    assert!(text.ends_with("]\n}\n"), "{text}");
}

#[test]
fn workspace_json_matches_committed_baseline() {
    let root = repo_root();
    let out = run_lint(&["--json", root.to_str().expect("utf-8 repo root")]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace must be clean: {out:?}"
    );
    let artifact = String::from_utf8(out.stdout).expect("utf-8 artifact");
    let baseline = fs::read_to_string(root.join("conformance-baseline.json"))
        .expect("committed conformance-baseline.json at the repo root");
    assert_eq!(
        artifact, baseline,
        "regenerate with: cargo run -p conformance --bin conformance-lint -- --json . > conformance-baseline.json"
    );
}

#[test]
fn pragma_inventory_is_sorted_and_exits_zero() {
    let root = repo_root();
    let out = run_lint(&["--pragmas", root.to_str().expect("utf-8 repo root")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8(out.stdout).expect("utf-8 inventory");
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        !lines.is_empty(),
        "the workspace carries at least the wall-clock waivers"
    );
    // Every entry is `file:line: rule: reason` with a known rule, and
    // the inventory is sorted by (file, numeric line).
    let mut keys: Vec<(String, u32)> = Vec::new();
    for line in &lines {
        let mut parts = line.splitn(4, ": ");
        let loc = parts.next().expect("file:line");
        let (file, line_no) = loc.rsplit_once(':').expect("file:line");
        keys.push((file.to_string(), line_no.parse::<u32>().expect("line no")));
        let rule = parts.next().expect("rule");
        assert!(conformance::RULE_NAMES.contains(&rule), "{line}");
        assert!(parts.next().is_some(), "missing reason: {line}");
    }
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "inventory must be sorted by (file, line)");
    // JSON mode is byte-deterministic too.
    let a = run_lint(&["--pragmas", "--json", root.to_str().expect("utf-8")]);
    let b = run_lint(&["--pragmas", "--json", root.to_str().expect("utf-8")]);
    assert_eq!(a.status.code(), Some(0));
    assert_eq!(a.stdout, b.stdout);
}
