//! Seeded violation fixture: float arithmetic and tie-unstable sorts in
//! deterministic-state code (`determinism`). Never compiled.

struct Fragment {
    // determinism: weights are u64; an f64 field rots fingerprints.
    level_estimate: f64,
}

fn merge_priority(frag: &Fragment, rounds: u64) -> u64 {
    // determinism: float literal + cast arithmetic on protocol state.
    let decay = 0.5 * frag.level_estimate;
    (rounds as f64 * decay) as u64
}

fn order_moes(moes: &mut Vec<(u64, u64)>) {
    // determinism: tied keys reorder across toolchains.
    moes.sort_unstable_by_key(|&(weight, _)| weight);
}
