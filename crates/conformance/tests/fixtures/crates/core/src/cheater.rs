//! Seeded violation fixture: a "protocol" that breaks every determinism
//! rule at once. Never compiled; input for the lint's integration tests.

use std::collections::HashMap;
use std::time::Instant;

fn choose_moe(weights: &HashMap<u64, u64>) -> u64 {
    // hash-container: iteration order decides the answer.
    let mut best = 0;
    for (&edge, &w) in weights.iter() {
        if w > best {
            best = edge;
        }
    }
    // wall-clock: timing-dependent protocol state.
    let jitter = Instant::now().elapsed().as_nanos() as u64;
    // print-in-lib: library code talking to stdout.
    println!("chose {best} with jitter {jitter}");
    // bare-unwrap: unreasoned panic in protocol code.
    weights.get(&best).copied().unwrap()
}
