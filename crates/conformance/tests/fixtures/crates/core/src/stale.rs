//! Seeded violation fixture: a waiver that outlived its code
//! (`stale-pragma`). Never compiled.

// The unwrap this excused was refactored into a typed error; the pragma
// must now be reported as stale.
// lint:allow(bare-unwrap) -- slot is populated by the caller
fn lookup(slot: Option<u32>) -> u32 {
    slot.unwrap_or(0)
}
