//! Counter-fixture: every needle below lives inside a literal or a
//! comment, where the old line-regex scanner false-positived. The
//! tokenizer must report NOTHING for this file. Never compiled.

fn doc_text() -> &'static str {
    // A string literal full of needles: data, not code.
    "HashMap and Instant::now() and x.unwrap() // std::time { Mutex"
}

fn raw_text() -> &'static str {
    // Raw string with hashes and embedded quotes.
    r#"weights: HashMap<u64, f64> "quoted" sort_unstable_by_key par_iter"#
}

fn char_quote() -> char {
    // The '"' char literal corrupted the old scanner's in-string state,
    // making it treat the rest of the file as a string.
    '"'
}

fn braces_in_strings(n: usize) -> String {
    // Braces inside literals skewed the old brace-balance test-region
    // tracking; `{n}` must not open a scope.
    format!("outer {{ inner }} {n}")
}

/* A nested /* block comment */ mentioning thread_rng and RefCell::new()
   stays a comment to the very end. */
fn after_comment() -> u32 {
    0
}
