//! Seeded violation fixture: malformed allow pragmas. Never compiled.

// lint:allow(no-such-rule) -- the rule name does not exist
fn misdirected() {}

// lint:allow(bare-unwrap)
fn reasonless(x: Option<u32>) -> u32 {
    // The reasonless pragma above is reported AND not honored:
    x.unwrap()
}
