//! Counter-fixture: correctly suppressed findings. The lint must report
//! nothing for this file. Never compiled.

// lint:allow(wall-clock) -- fixture demonstrating a well-formed pragma
use std::time::Instant;

fn timed(x: Option<u32>) -> u32 {
    // lint:allow(bare-unwrap) -- fixture demonstrating a same-line pragma
    let v = x.unwrap(); // lint:allow(bare-unwrap) -- caller guarantees Some
    v
}
