// Fixture: the fault plane must not touch any RNG source other than the
// plan's own fault_seed (`fault-stream`).

pub fn decide_drop(fault_seed: u64, master_seed: u64, round: u64) -> bool {
    // Mixing the protocol's master_seed into a fault decision breaks the
    // replay contract; this line must trip `fault-stream`.
    (fault_seed ^ master_seed ^ round) % 2 == 0
}
