//! Seeded violation fixture: shared-mutable primitives and unordered
//! parallelism in lane-executed code (`shard-safety`). Never compiled.

use std::sync::Mutex;
use std::sync::atomic::AtomicU64 as Counter;

// shard-safety: thread_local state diverges per shard worker.
thread_local! {
    static SCRATCH: Vec<u64> = Vec::new();
}

// shard-safety: a data race waiting for a second shard.
static mut GLOBAL_ROUND: u64 = 0;

struct Racy {
    // shard-safety: shared-mutable primitive in lane state.
    inbox: Mutex<Vec<u64>>,
    // shard-safety: the alias resolves back to AtomicU64.
    delivered: Counter,
}

fn fan_out(lanes: &[Racy]) {
    // shard-safety: unordered parallel iteration breaks lane order.
    lanes.par_iter().for_each(|lane| {
        lane.inbox.lock().expect("poisoned").clear();
    });
}
