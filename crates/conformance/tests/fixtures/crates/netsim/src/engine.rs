//! Seeded violation fixture: panic machinery in the executor hot path.
//! This file is never compiled — the lint's integration tests (and CI's
//! nonzero-exit check) run `conformance-lint` over the fixtures tree and
//! expect exactly these findings.

fn deliver(slot: usize, arena: &[u32]) -> u32 {
    // engine-panic-path + bare-unwrap: indexing fallback panics.
    let first = arena.get(slot).unwrap();
    if *first == 0 {
        // engine-panic-path: the hot path must return SimError.
        panic!("empty inbox slot");
    }
    *first
}

fn route(port: usize, backs: &[usize]) -> usize {
    // engine-panic-path: expect() is still a panic here.
    *backs.get(port).expect("port in range")
}
