//! Integration tests: the lint is clean on the real workspace and fires
//! on every seeded fixture — the same checks CI runs via the
//! `conformance-lint` binary's exit code.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use conformance::lint_tree;

fn repo_root() -> PathBuf {
    // crates/conformance → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/conformance")
        .to_path_buf()
}

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn repo_tree_is_clean() {
    let findings = lint_tree(&repo_root()).expect("walk workspace");
    assert!(
        findings.is_empty(),
        "the workspace must lint clean; found:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn fixtures_trip_every_rule() {
    let findings = lint_tree(&fixtures_root()).expect("walk fixtures");
    let fired: BTreeSet<&str> = findings.iter().map(|f| f.rule).collect();
    for rule in conformance::RULE_NAMES {
        assert!(
            fired.contains(rule),
            "no fixture fires '{rule}': {findings:?}"
        );
    }
}

#[test]
fn fixture_findings_name_file_and_line() {
    let findings = lint_tree(&fixtures_root()).expect("walk fixtures");
    let engine_panic = findings
        .iter()
        .find(|f| f.rule == "engine-panic-path")
        .expect("engine fixture finding");
    assert_eq!(engine_panic.file, "crates/netsim/src/engine.rs");
    assert!(engine_panic.line > 0);
    assert!(engine_panic
        .to_string()
        .starts_with("crates/netsim/src/engine.rs:"));
}

#[test]
fn new_family_fixtures_fire_with_file_and_line() {
    let findings = lint_tree(&fixtures_root()).expect("walk fixtures");
    let shard = findings
        .iter()
        .find(|f| f.rule == "shard-safety")
        .expect("shard-safety fixture finding");
    assert_eq!(shard.file, "crates/netsim/src/protocol.rs");
    assert!(shard.line > 0);
    let det = findings
        .iter()
        .find(|f| f.rule == "determinism")
        .expect("determinism fixture finding");
    assert_eq!(det.file, "crates/core/src/float_creep.rs");
    let stale = findings
        .iter()
        .find(|f| f.rule == "stale-pragma")
        .expect("stale-pragma fixture finding");
    assert_eq!(stale.file, "crates/core/src/stale.rs");
    assert_eq!(stale.line, 6);
    // The alias in the shard fixture resolves: `Counter` is AtomicU64.
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "shard-safety" && f.message.contains("AtomicU64")),
        "alias resolution finding missing: {findings:?}"
    );
}

#[test]
fn tokenizer_regression_fixture_is_silent() {
    // Every needle in strings.rs lives inside a literal or a comment —
    // the constructs the old line-regex scanner false-positived on
    // (braces and `//` in string/char/raw-string literals, nested block
    // comments). The tokenizer must report nothing there.
    let findings = lint_tree(&fixtures_root()).expect("walk fixtures");
    let in_strings: Vec<String> = findings
        .iter()
        .filter(|f| f.file.ends_with("strings.rs"))
        .map(|f| f.to_string())
        .collect();
    assert!(in_strings.is_empty(), "{in_strings:?}");
}

#[test]
fn allowed_fixture_is_silent() {
    let findings = lint_tree(&fixtures_root()).expect("walk fixtures");
    assert!(
        !findings.iter().any(|f| f.file.ends_with("allowed.rs")),
        "well-formed pragmas must suppress: {findings:?}"
    );
}

#[test]
fn reasonless_pragma_is_reported_and_not_honored() {
    let findings = lint_tree(&fixtures_root()).expect("walk fixtures");
    let in_bad: Vec<&str> = findings
        .iter()
        .filter(|f| f.file.ends_with("bad_pragma.rs"))
        .map(|f| f.rule)
        .collect();
    assert!(in_bad.contains(&"bad-pragma"), "{in_bad:?}");
    assert!(in_bad.contains(&"bare-unwrap"), "{in_bad:?}");
}
