//! Quickstart: build a random network, run the awake-optimal randomized
//! MST algorithm on the sleeping-model simulator, and verify the result
//! against a sequential reference MST.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sleeping_mst::graphlib::{generators, mst};
use sleeping_mst::mst_core::run_randomized;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 128;
    let graph = generators::random_connected(n, 0.05, 42)?;
    println!(
        "network: {} nodes, {} edges (random connected, distinct weights)",
        graph.node_count(),
        graph.edge_count()
    );

    let outcome = run_randomized(&graph, 7)?;
    let reference = mst::kruskal(&graph);

    println!("\nRandomized-MST (sleeping model):");
    println!("  MST edges          : {}", outcome.edges.len());
    println!(
        "  total weight       : {}",
        graph.total_weight(outcome.edges.iter().copied())
    );
    println!("  merge phases       : {}", outcome.phases);
    println!(
        "  awake complexity   : {} rounds (max over nodes)",
        outcome.stats.awake_max()
    );
    println!(
        "  awake (average)    : {:.1} rounds",
        outcome.stats.awake_avg()
    );
    println!("  round complexity   : {} rounds", outcome.stats.rounds);
    println!(
        "  messages delivered : {}",
        outcome.stats.messages_delivered
    );
    println!("  messages lost      : {}", outcome.stats.messages_lost);

    assert_eq!(
        outcome.edges, reference.edges,
        "distributed MST must match Kruskal"
    );
    println!("\nverified: distributed output equals the unique MST (Kruskal).");
    println!(
        "awake/log2(n) = {:.1} — the paper's O(log n) awake bound in action; \
         the node slept through {:.1}% of the run.",
        outcome.stats.awake_max() as f64 / (n as f64).log2(),
        100.0 * (1.0 - outcome.stats.awake_max() as f64 / outcome.stats.rounds as f64)
    );
    Ok(())
}
