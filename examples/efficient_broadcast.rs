//! The paper's opening motivation, end to end: build an MST with tiny
//! awake cost, then use it for energy-efficient broadcast.
//!
//! "An MST serves as a basic primitive in many network applications
//! including efficient broadcast … MST is useful for energy-efficient
//! broadcast in wireless networks."
//!
//! We compare three ways to broadcast one message from a source:
//!
//! 1. **flooding** (no structure): every node stays awake until the wave
//!    passes — awake cost grows with the eccentricity;
//! 2. **MST broadcast without amortization**: one `Fragment-Broadcast`
//!    block on the tree built by `Randomized-MST` — every node awake O(1)
//!    rounds;
//! 3. the same including the **one-time cost of building the tree**
//!    (O(log n) awake), amortized over `k` broadcasts.
//!
//! ```text
//! cargo run --release --example efficient_broadcast
//! ```

use sleeping_mst::graphlib::{generators, NodeId};
use sleeping_mst::mst_core::run_randomized;
use sleeping_mst::mst_core::toolbox::{Broadcast, TreeSpec};
use sleeping_mst::netsim::{flood, SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 128;
    let graph = generators::random_connected(n, 0.04, 11)?;
    println!("network: {n} nodes, {} edges\n", graph.edge_count());

    // 1. Flooding: the unstructured baseline.
    let flood_out = Simulator::new(&graph, SimConfig::default())
        .run(|ctx| flood::Flood::new(ctx.node.raw() == 0))?;
    println!("flooding broadcast:");
    println!("  awake max  : {} rounds", flood_out.stats.awake_max());
    println!("  awake avg  : {:.1} rounds", flood_out.stats.awake_avg());
    println!("  messages   : {}", flood_out.stats.messages_sent());

    // 2. Build the MST once (sleeping model), then broadcast over it.
    let mst = run_randomized(&graph, 3)?;
    let specs = TreeSpec::from_tree_edges(&graph, &mst.edges, NodeId::new(0));
    let tree_out = Simulator::new(&graph, SimConfig::default()).run(|ctx| {
        let payload = (ctx.node.raw() == 0).then_some(0xC0FFEE);
        Broadcast::new(specs[ctx.node.index()].clone(), payload)
    })?;
    assert!(tree_out.states.iter().all(|s| s.value == Some(0xC0FFEE)));
    println!("\nMST broadcast (tree already built):");
    println!("  awake max  : {} rounds", tree_out.stats.awake_max());
    println!(
        "  messages   : {} (= n - 1)",
        tree_out.stats.messages_sent()
    );

    // 3. Amortization: tree construction cost spread over k broadcasts.
    println!(
        "\namortized awake cost per broadcast (tree build = {} awake rounds):",
        mst.stats.awake_max()
    );
    println!("  k broadcasts | flooding | MST (amortized)");
    for k in [1u64, 10, 100] {
        let amortized = (mst.stats.awake_max() + k * tree_out.stats.awake_max()) as f64 / k as f64;
        println!(
            "  {k:>12} | {:>8} | {amortized:>15.1}",
            flood_out.stats.awake_max()
        );
    }
    println!(
        "\nAfter ~{} broadcasts the O(log n) construction cost is fully paid\n\
         back and every further broadcast costs each node O(1) awake rounds —\n\
         the energy argument that motivates sleeping-model MST.",
        mst.stats.awake_max() / tree_out.stats.awake_max().max(1)
    );
    Ok(())
}
