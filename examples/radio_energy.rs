//! Appendix A live: the sleeping model vs the energy-complexity (radio)
//! model.
//!
//! The paper notes that its algorithms transfer to the *Local* variant of
//! the energy model (no collisions), while real radio channels add
//! collision constraints. This example runs the LDT toolbox's broadcast
//! and upcast on all three channel semantics and shows:
//!
//! * identical O(1)-energy behaviour under the Local rule,
//! * the exact collision patterns that break the same schedules under
//!   Detection/Silence — the source of the "possibly polylog(n)
//!   multiplicative factor" in the appendix.
//!
//! ```text
//! cargo run --release --example radio_energy
//! ```

use sleeping_mst::graphlib::{generators, mst, NodeId};
use sleeping_mst::mst_core::radio_toolbox::{RadioBroadcast, RadioUpcastMin};
use sleeping_mst::mst_core::toolbox::TreeSpec;
use sleeping_mst::netsim::radio::{CollisionRule, RadioSimulator};
use sleeping_mst::netsim::EnergyModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 32;
    let graph = generators::random_connected(n, 0.12, 9)?;
    let tree = mst::kruskal(&graph);
    let specs = TreeSpec::from_tree_edges(&graph, &tree.edges, NodeId::new(0));
    // The radio executor charges through the same `EnergyModel` as the
    // sleeping-model kernel; `radio_default()` is the classic
    // one-unit-per-active-round accounting of the energy-complexity
    // literature (round:1, everything else free).
    let model = EnergyModel::radio_default();
    println!(
        "network: {n} nodes; broadcasting over its MST in the radio model\n\
         energy model: {}\n",
        model.spec_string()
    );

    println!("| rule      | informed | energy max | energy avg | collisions |");
    println!("|-----------|----------|------------|------------|------------|");
    for rule in [
        CollisionRule::Local,
        CollisionRule::Detection,
        CollisionRule::Silence,
    ] {
        let out = RadioSimulator::new(&graph, rule)
            .with_energy(model)
            .run(|ctx| {
                let payload = (ctx.node.raw() == 0).then_some(42);
                RadioBroadcast::new(specs[ctx.node.index()].clone(), payload)
            })?;
        let informed = out.states.iter().filter(|s| s.value == Some(42)).count();
        println!(
            "| {:<9} | {informed:>5}/{n:<2} | {:>10} | {:>10.2} | {:>10} |",
            format!("{rule:?}"),
            out.stats.energy_max(),
            out.stats.energy_avg(),
            out.stats.collisions,
        );
    }

    println!("\nupcast-min over the same tree:");
    println!("| rule      | root got min | energy max | collisions |");
    println!("|-----------|--------------|------------|------------|");
    let values: Vec<u64> = (0..n as u64).map(|i| 1000 - 13 * i).collect();
    let expected = *values.iter().min().unwrap();
    for rule in [
        CollisionRule::Local,
        CollisionRule::Detection,
        CollisionRule::Silence,
    ] {
        let out = RadioSimulator::new(&graph, rule)
            .with_energy(model)
            .run(|ctx| {
                RadioUpcastMin::new(specs[ctx.node.index()].clone(), values[ctx.node.index()])
            })?;
        println!(
            "| {:<9} | {:>12} | {:>10} | {:>10} |",
            format!("{rule:?}"),
            out.states[0].value == expected,
            out.stats.energy_max(),
            out.stats.collisions,
        );
    }
    println!(
        "\nLocal = the sleeping model in disguise (same O(1) energy, same\n\
         schedule, everything works). Under real radio rules the same\n\
         schedule collides whenever a node has two transmitting neighbors\n\
         in one round — avoiding that costs extra time or energy, which is\n\
         the overhead Appendix A prices in."
    );
    Ok(())
}
