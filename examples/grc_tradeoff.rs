//! Theorem 4 on `G_rc`: the awake × round trade-off, plus the full
//! SD → DSD → CSS → MST reduction executed by a *distributed* algorithm.
//!
//! We build the Figure 1 graph, encode a random set-disjointness instance
//! into edge weights (Lemmas 8–10), run the sleeping-model MST on it, and
//! decode the SD answer from the distributed output. Then we compare the
//! awake × round products of the sleeping algorithm and the always-awake
//! baseline against the `Ω̃(n)` trade-off curve, and report how much
//! traffic squeezed through the `O(log n)` tree nodes `I` — the congestion
//! Lemma 8 converts into awake time.
//!
//! ```text
//! cargo run --release --example grc_tradeoff
//! ```

use sleeping_mst::graphlib::traversal;
use sleeping_mst::lowerbound::congestion::internal_traffic;
use sleeping_mst::lowerbound::grc::Grc;
use sleeping_mst::lowerbound::reduction::{css_to_mst, mark_edges, mst_uses_unmarked};
use sleeping_mst::lowerbound::sd::SdInstance;
use sleeping_mst::mst_core::{run_always_awake, run_randomized};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grc = Grc::build(8, 32, 3)?;
    println!(
        "G_rc: r = {} rows x c = {} cols, |X| = {}, |I| = {}, n = {}, diameter = {}",
        grc.rows,
        grc.cols,
        grc.x_nodes.len(),
        grc.internal.len(),
        grc.n(),
        traversal::diameter(&grc.graph).unwrap()
    );

    // --- the reduction chain, end to end, solved distributively ---
    println!("\nSD instances decided by running distributed MST on G_rc:");
    for seed in 0..4 {
        let sd = SdInstance::random(grc.sd_bits(), seed);
        let marked = mark_edges(&grc, &sd);
        let weighted = css_to_mst(&grc.graph, &marked);
        let out = run_randomized(&weighted, seed)?;
        let answer = !mst_uses_unmarked(&marked, &out.edges);
        println!(
            "  seed {seed}: ground truth disjoint = {:<5} | decoded from MST = {:<5} | {}",
            sd.disjoint(),
            answer,
            if answer == sd.disjoint() {
                "ok"
            } else {
                "MISMATCH"
            }
        );
        assert_eq!(answer, sd.disjoint());
    }

    // --- the trade-off products ---
    println!("\nawake x rounds on G_rc (MST with random weights):");
    println!("| algorithm        | awake max | rounds  | product    | product / n |");
    println!("|------------------|-----------|---------|------------|-------------|");
    let n = grc.n() as f64;
    let sleeping = run_randomized(&grc.graph, 11)?;
    let awake = run_always_awake(&grc.graph, 11)?;
    for (name, out) in [("Randomized-MST", &sleeping), ("GHS always-awake", &awake)] {
        let product = out.stats.awake_round_product();
        println!(
            "| {:<16} | {:>9} | {:>7} | {:>10} | {:>11.1} |",
            name,
            out.stats.awake_max(),
            out.stats.rounds,
            product,
            product as f64 / n
        );
    }
    println!(
        "\nTheorem 4 says no algorithm can push the product below ~n/polylog(n);\n\
         the sleeping algorithm sits near that frontier, the always-awake one\n\
         is far above it."
    );

    // --- congestion at the tree nodes I ---
    let weighted = css_to_mst(
        &grc.graph,
        &mark_edges(&grc, &SdInstance::random(grc.sd_bits(), 0)),
    );
    let out = run_randomized(&weighted, 5)?;
    let sim_stats = out.stats;
    let traffic = internal_traffic(&grc, &sim_stats);
    println!(
        "\ncongestion at I (|I| = {}): total {} bits received, busiest node {} bits, \
         max awake {} rounds",
        traffic.node_count, traffic.total_bits, traffic.max_bits, traffic.max_awake
    );
    Ok(())
}
