//! Measures the per-algorithm CONGEST constant: the worst observed
//! `⌈max_message_bits / ⌈log₂ n⌉⌉` across a panel of graph shapes and
//! sizes. The `congest_constant` values recorded in the algorithm registry
//! (and enforced by `sleeping-mst check` / `AlgorithmSpec::check`) are
//! these measurements plus headroom; re-run this after changing any
//! message format:
//!
//! ```text
//! cargo run --release --example measure_congest
//! ```
//!
//! As of the current `MstMsg` encoding every algorithm peaks at C = 11,
//! at n = 4: the dominant field is the edge weight, and `weight_span`
//! floors the weight domain at 2^16, so the widest message is ~22 bits
//! while `⌈log₂ 4⌉ = 2`. The ratio shrinks as n grows (the weight field
//! is `6 + 3·log₂ n` bits against a `log₂ n` budget unit).

use graphlib::generators;
use mst_core::registry;

fn main() {
    for spec in registry::ALGORITHMS {
        let mut worst = 0u64;
        for &n in &[4usize, 5, 6, 8, 12, 16, 32, 64, 128, 256] {
            for seed in 0..6u64 {
                let g = generators::random_connected(n, 0.4, seed).unwrap();
                let out = spec.run(&g, seed).unwrap();
                worst = worst.max(out.stats.log_constant(n));
            }
            if n <= 64 {
                let g = generators::complete(n, 1).unwrap();
                let out = spec.run(&g, 1).unwrap();
                worst = worst.max(out.stats.log_constant(n));
            }
            let g = generators::ring(n, 2).unwrap();
            let out = spec.run(&g, 2).unwrap();
            worst = worst.max(out.stats.log_constant(n));
        }
        println!(
            "{:15} worst observed C = {:2}   (registry records {})",
            spec.name, worst, spec.congest_constant
        );
    }
}
