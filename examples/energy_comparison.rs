//! Energy comparison: the paper's motivating scenario, priced.
//!
//! A battery-powered sensor network wants an MST for efficient broadcast.
//! A node spends energy only while its radio is on (awake). This example
//! runs the same MST computation four ways — the traditional always-awake
//! GHS, the paper's randomized sleeping algorithm, its deterministic
//! sibling, and the Corollary-1 log*-awake variant — under the reference
//! [`EnergyModel`] (per-awake-round, per-bit send/receive, and
//! idle-listen costs), and reports both the raw awake rounds and the
//! priced energy ledger each one costs.
//!
//! ```text
//! cargo run --release --example energy_comparison
//! ```

use sleeping_mst::graphlib::generators;
use sleeping_mst::mst_core::{registry, ExecOptions, MstScratch};
use sleeping_mst::netsim::EnergyModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = EnergyModel::reference();
    println!("energy model: {}\n", model.spec_string());
    println!(
        "| n   | algorithm         | awake max | energy max | energy avg | rounds  | awake/log2(n) |"
    );
    println!(
        "|-----|-------------------|-----------|------------|------------|---------|---------------|"
    );

    let mut scratch = MstScratch::new();
    for &n in &[16usize, 32, 64] {
        // A sensor field: random geometric-ish connectivity approximated by
        // a sparse random connected graph.
        let graph = generators::random_connected(n, 0.08, n as u64)?;
        let log_n = (n as f64).log2();
        let opts = ExecOptions::seeded(1).with_energy(model);

        let mut reference_edges = None;
        for (name, label) in [
            ("always-awake", "GHS always-awake"),
            ("randomized", "Randomized-MST"),
            ("deterministic", "Deterministic-MST"),
            ("logstar", "Corollary-1 (CV)"),
        ] {
            let spec = registry::find(name).expect("registry algorithm");
            let out = spec.run_with_options(&graph, &opts, &mut scratch)?;
            match &reference_edges {
                None => reference_edges = Some(out.edges.clone()),
                Some(reference) => assert_eq!(reference, &out.edges),
            }
            println!(
                "| {:<3} | {:<17} | {:>9} | {:>10} | {:>10.0} | {:>7} | {:>13.1} |",
                n,
                label,
                out.stats.awake_max(),
                out.stats.energy_max(),
                out.stats.energy_avg(),
                out.stats.rounds,
                out.stats.awake_max() as f64 / log_n,
            );
        }
    }

    println!(
        "\nReading the table: the sleeping algorithms keep awake time flat at\n\
         O(log n) while the always-awake baseline pays the full run time in\n\
         energy — exactly Table 1 of the paper, measured. The priced ledger\n\
         (reference model: {}) makes the gap concrete:\n\
         idle-listening dominates the always-awake bill, while the sleeping\n\
         algorithms pay mostly for the bits they actually move.",
        EnergyModel::reference().spec_string()
    );
    Ok(())
}
