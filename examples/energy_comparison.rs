//! Energy comparison: the paper's motivating scenario.
//!
//! A battery-powered sensor network wants an MST for efficient broadcast.
//! A node spends energy only while its radio is on (awake). This example
//! runs the same MST computation three ways — the traditional always-awake
//! GHS, the paper's randomized sleeping algorithm, and its deterministic
//! sibling — and reports the awake rounds ("energy") each one costs.
//!
//! ```text
//! cargo run --release --example energy_comparison
//! ```

use sleeping_mst::graphlib::generators;
use sleeping_mst::mst_core::{run_always_awake, run_deterministic, run_logstar, run_randomized};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("| n   | algorithm         | awake max | awake avg | rounds  | awake/log2(n) |");
    println!("|-----|-------------------|-----------|-----------|---------|---------------|");

    for &n in &[16usize, 32, 64] {
        // A sensor field: random geometric-ish connectivity approximated by
        // a sparse random connected graph.
        let graph = generators::random_connected(n, 0.08, n as u64)?;
        let log_n = (n as f64).log2();

        let ghs = run_always_awake(&graph, 1)?;
        let rand = run_randomized(&graph, 1)?;
        let det = run_deterministic(&graph)?;
        let cv = run_logstar(&graph)?;
        assert_eq!(ghs.edges, rand.edges);
        assert_eq!(rand.edges, det.edges);
        assert_eq!(det.edges, cv.edges);

        for (name, out) in [
            ("GHS always-awake", &ghs),
            ("Randomized-MST", &rand),
            ("Deterministic-MST", &det),
            ("Corollary-1 (CV)", &cv),
        ] {
            println!(
                "| {:<3} | {:<17} | {:>9} | {:>9.1} | {:>7} | {:>13.1} |",
                n,
                name,
                out.stats.awake_max(),
                out.stats.awake_avg(),
                out.stats.rounds,
                out.stats.awake_max() as f64 / log_n,
            );
        }
    }

    println!(
        "\nReading the table: the sleeping algorithms keep awake time flat at\n\
         O(log n) while the always-awake baseline pays the full run time in\n\
         energy — exactly Table 1 of the paper, measured."
    );
    Ok(())
}
