//! Theorem 3's ring experiment: the `Ω(log n)` awake lower bound, and our
//! algorithm's matching `O(log n)` upper bound, measured side by side.
//!
//! Two things are verified empirically:
//!
//! 1. the construction's premise — on a random-weight ring, the two
//!    heaviest edges (whose comparison forces long-distance communication)
//!    are separated by `Ω(n)` hops with constant probability;
//! 2. the conclusion's shape — the measured awake complexity of
//!    `Randomized-MST`, divided by `log₂ n`, stays flat as `n` doubles,
//!    i.e. the algorithm sits at the lower bound.
//!
//! ```text
//! cargo run --release --example lower_bound_ring
//! ```

use sleeping_mst::lowerbound::ring;
use sleeping_mst::mst_core::run_randomized;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("premise: separation of the two heaviest ring edges (20 seeds each)");
    println!("| n    | mean separation | mean / n | P(sep >= n/8) |");
    println!("|------|-----------------|----------|---------------|");
    for &n in &[64usize, 128, 256, 512] {
        let seps: Vec<usize> = (0..20)
            .map(|s| ring::heaviest_separation_sample(n, s).unwrap())
            .collect();
        let mean = seps.iter().sum::<usize>() as f64 / seps.len() as f64;
        let far = seps.iter().filter(|&&s| s >= n / 8).count() as f64 / seps.len() as f64;
        println!(
            "| {n:<4} | {mean:>15.1} | {:>8.3} | {far:>13.2} |",
            mean / n as f64
        );
    }

    println!("\nconclusion: awake complexity of Randomized-MST on rings");
    println!("| n    | awake max | rounds   | awake/log2(n) |");
    println!("|------|-----------|----------|---------------|");
    for &n in &[32usize, 64, 128, 256] {
        let graph = ring::instance(n, 1)?;
        let out = run_randomized(&graph, 9)?;
        println!(
            "| {n:<4} | {:>9} | {:>8} | {:>13.1} |",
            out.stats.awake_max(),
            out.stats.rounds,
            out.stats.awake_max() as f64 / (n as f64).log2()
        );
    }
    println!(
        "\nThe awake/log2(n) column staying (roughly) constant while n grows\n\
         8x is the Θ(log n) awake complexity of Theorem 1 + Theorem 3."
    );
    Ok(())
}
