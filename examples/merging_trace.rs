//! The `Merging-Fragments` walkthrough (Figures 2–5 of the paper), traced
//! live on the simulator.
//!
//! The paper's figures show a Tails fragment whose MOE leads into a Heads
//! fragment: the Tails tree re-roots itself at its MOE endpoint `u_T`,
//! adopts the Heads fragment's id, and every node's distance label is
//! re-computed in two `Transmission-Schedule` sweeps. This example runs
//! the randomized algorithm on a small path network and prints each node's
//! (fragment, level, parent) after every phase, so the re-orientations are
//! visible phase by phase.
//!
//! ```text
//! cargo run --release --example merging_trace
//! ```

use sleeping_mst::graphlib::{generators, mst, NodeId};
use sleeping_mst::mst_core::randomized::{RandomizedMst, BLOCKS_PER_PHASE};
use sleeping_mst::mst_core::timeline::Timeline;
use sleeping_mst::netsim::{SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8;
    let graph = generators::path(n, 5)?;
    println!("path network of {n} nodes; edge weights:");
    for e in graph.edges() {
        println!("  {} — {} : {}", e.u, e.v, e.weight);
    }

    let timeline = Timeline::new(n, BLOCKS_PER_PHASE);
    let phase_len = timeline.phase_len();
    let mut printed_phase = u64::MAX;

    let out = Simulator::new(&graph, SimConfig::default().with_seed(3)).run_with_observer(
        RandomizedMst::new,
        |round, states: &[RandomizedMst]| {
            let phase = (round - 1) / phase_len;
            if phase != printed_phase {
                printed_phase = phase;
                println!("\nstart of phase {phase} (round {round}):");
                println!("  node | fragment | level | parent");
                for (i, s) in states.iter().enumerate() {
                    let v = s.ldt_view();
                    let parent = v
                        .parent
                        .map(|p| {
                            graph
                                .port_entry(NodeId::new(i as u32), p)
                                .neighbor
                                .to_string()
                        })
                        .unwrap_or_else(|| "root".to_string());
                    println!(
                        "  {:>4} | {:>8} | {:>5} | {}",
                        i, v.fragment, v.level, parent
                    );
                }
            }
        },
    )?;

    println!("\nfinal MST ports per node:");
    for v in graph.nodes() {
        let marks: Vec<String> = out.states[v.index()]
            .mst_ports()
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(p, _)| {
                graph
                    .port_entry(v, sleeping_mst::graphlib::Port::new(p as u32))
                    .neighbor
                    .to_string()
            })
            .collect();
        println!("  {v}: MST neighbors {{{}}}", marks.join(", "));
    }

    let reference = mst::kruskal(&graph);
    println!(
        "\nverified against Kruskal: {} MST edges, total weight {}.",
        reference.edges.len(),
        reference.total_weight
    );
    println!(
        "awake complexity {} rounds over {} total rounds across {} phases.",
        out.stats.awake_max(),
        out.stats.rounds,
        out.states.iter().map(|s| s.phases()).max().unwrap_or(0)
    );
    Ok(())
}
