//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so the workspace patches
//! `proptest` to this vendored shim (see `[patch.crates-io]` in the root
//! `Cargo.toml`). It supports the subset the workspace's property tests
//! use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header;
//! * range strategies over integers and `f64`, tuple strategies,
//!   [`collection::vec`], [`option::of`], and [`arbitrary::any`] (for
//!   `bool`);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`], and
//!   [`prop_assume!`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports
//! its generated inputs and panics immediately. Case generation is
//! deterministic per test (seeded from the test's module path and name),
//! so failures reproduce across runs.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use core::ops::{Range, RangeInclusive};

    /// Deterministic generator used to drive strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test identifier string.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the test path keeps seeds stable across runs and
            // distinct across tests.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            if span.is_power_of_two() {
                return self.next_u64() & (span - 1);
            }
            let zone = u64::MAX - (u64::MAX % span + 1) % span;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % span;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_strategy_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy range is empty");
                    let span = hi as i128 - lo as i128 + 1;
                    if span > u64::MAX as i128 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span as u64) as $t)
                }
            }
        )*};
    }

    impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "strategy range is empty");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_strategy_tuple {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_strategy_tuple! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point for types with a canonical strategy.

    use crate::strategy::{Strategy, TestRng};
    use core::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{Strategy, TestRng};
    use core::ops::Range;

    /// Size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "size range is empty");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>` produced by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // `None` a quarter of the time, mirroring real proptest's bias
            // toward the interesting (`Some`) branch.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `proptest::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod test_runner {
    //! Runner configuration and per-case control flow.

    /// Runner configuration (only the case count is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case's preconditions were not met (`prop_assume!`); the case
        /// is skipped, not failed.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Constructs a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Constructs a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($config:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::strategy::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    let __inputs = format!(
                        concat!("case #{}: ", $(stringify!($arg), " = {:?}, ",)* "(end)"),
                        __case, $(&$arg,)*
                    );
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match __result {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property failed: {}\n{}", msg, __inputs);
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), a, b
        );
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(n in 1usize..10, pair in (0u32..5, 0u32..5)) {
            prop_assert!(n >= 1 && n < 10);
            prop_assert!(pair.0 < 5 && pair.1 < 5);
        }

        #[test]
        fn vecs_and_any(v in crate::collection::vec(any::<bool>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn options(o in crate::option::of(3u32..7)) {
            if let Some(v) = o {
                prop_assert!((3..7).contains(&v));
            }
        }

        #[test]
        fn assume_skips(n in 0u64..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[allow(unused)]
            fn inner(n in 0u64..10) {
                prop_assert!(n > 100, "n was {}", n);
            }
        }
        inner();
    }
}
