//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no access to crates.io, so the workspace patches
//! `criterion` to this vendored shim (see `[patch.crates-io]` in the root
//! `Cargo.toml`). It implements the subset the workspace's benches use —
//! groups, `bench_function` / `bench_with_input`, `sample_size`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros —
//! as a plain wall-clock harness: each benchmark runs `sample_size`
//! samples and reports min / median / mean per iteration. There are no
//! statistical comparisons, plots, or saved baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque re-export of `std::hint::black_box`.
pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter (the group provides the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Work performed per iteration, enabling rate reporting.
///
/// Set on a group via [`BenchmarkGroup::throughput`]; subsequent
/// benchmarks in that group report elements (or bytes) per second derived
/// from the median sample, alongside the per-iteration wall-clock times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Each iteration processes this many abstract elements.
    Elements(u64),
    /// Each iteration processes this many bytes.
    Bytes(u64),
}

impl Throughput {
    /// The raw per-iteration count.
    fn count(self) -> u64 {
        match self {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        }
    }

    /// The unit suffix for rate display.
    fn unit(self) -> &'static str {
        match self {
            Throughput::Elements(_) => "elem/s",
            Throughput::Bytes(_) => "B/s",
        }
    }
}

/// Formats `count / seconds` with a 1000-based scale prefix, e.g.
/// `12.345 Melem/s`.
fn format_rate(count: u64, seconds: f64, unit: &str) -> String {
    let rate = count as f64 / seconds;
    let (scaled, prefix) = if rate >= 1e9 {
        (rate / 1e9, "G")
    } else if rate >= 1e6 {
        (rate / 1e6, "M")
    } else if rate >= 1e3 {
        (rate / 1e3, "K")
    } else {
        (rate, "")
    };
    format!("{scaled:.3} {prefix}{unit}")
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_count),
            sample_count: sample_count.max(1),
        }
    }

    /// Times `routine`, recording one sample per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        while self.samples.len() < self.sample_count {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: Option<&str>, id: &str, samples: &mut [Duration], throughput: Option<Throughput>) {
    let name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let rate = throughput
        .filter(|_| median > Duration::ZERO)
        .map(|t| {
            format!(
                "   {}",
                format_rate(t.count(), median.as_secs_f64(), t.unit())
            )
        })
        .unwrap_or_default();
    println!(
        "{name:<40} min {min:>12.3?}   median {median:>12.3?}   mean {mean:>12.3?}   ({} samples){rate}",
        samples.len()
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the per-iteration work of subsequent benchmarks; their report
    /// lines gain an elements- (or bytes-) per-second rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark with no extra input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(Some(&self.name), &id.id, &mut b.samples, self.throughput);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(Some(&self.name), &id.id, &mut b.samples, self.throughput);
        self
    }

    /// Ends the group (printing happens eagerly; this is a no-op hook).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            20
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(20);
        f(&mut b);
        report(None, id, &mut b.samples, None);
        self
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            let _ = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point for `cargo bench` binaries (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards flags like `--bench`; this harness has
            // no options, so arguments are accepted and ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_benches_run_and_report() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        {
            let mut group = c.benchmark_group("shim");
            group.sample_size(3);
            group.bench_function("count", |b| b.iter(|| calls += 1));
            group.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            group.finish();
        }
        assert_eq!(calls, 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("a", 7).to_string(), "a/7");
        assert_eq!(BenchmarkId::from_parameter("4x8").to_string(), "4x8");
    }

    #[test]
    fn throughput_rates_scale_and_label() {
        // 2_000_000 elements in 0.5 s → 4 Melem/s; 500 bytes in 1 s stays
        // unscaled.
        assert_eq!(
            format_rate(Throughput::Elements(2_000_000).count(), 0.5, "elem/s"),
            "4.000 Melem/s"
        );
        assert_eq!(
            format_rate(
                Throughput::Bytes(500).count(),
                1.0,
                Throughput::Bytes(500).unit()
            ),
            "500.000 B/s"
        );
        assert_eq!(format_rate(3_000, 1.0, "elem/s"), "3.000 Kelem/s");
        assert_eq!(format_rate(5_000_000_000, 1.0, "elem/s"), "5.000 Gelem/s");
    }

    #[test]
    fn group_with_throughput_still_runs_samples() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        let mut group = c.benchmark_group("rate");
        group.sample_size(4).throughput(Throughput::Elements(128));
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 4);
    }
}
