//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace patches
//! `rand` to this vendored shim (see `[patch.crates-io]` in the root
//! `Cargo.toml`). It implements exactly the API subset the workspace uses:
//!
//! * [`SeedableRng::seed_from_u64`]
//! * [`Rng::gen_range`] over integer ranges, [`Rng::gen_bool`]
//! * [`rngs::StdRng`], [`rngs::SmallRng`]
//! * [`seq::SliceRandom::shuffle`]
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! per seed, statistically solid for simulation workloads. Streams are
//! **not** bit-identical to upstream `rand` 0.8; committed experiment
//! tables are regenerated against this shim.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// A random number generator: the single low-level hook everything else
/// derives from (upstream rand's `RngCore`, trimmed to `next_u64`).
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        // 53 uniform mantissa bits in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled uniformly (upstream `SampleRange`).
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi as i128 - lo as i128 + 1;
                if span > u64::MAX as i128 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

/// xoshiro256++ core.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    fn from_seed(seed: u64) -> Self {
        // SplitMix64 expansion, the reference seeding procedure.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Xoshiro256pp {
            s: [next(), next(), next(), next()],
        }
    }

    fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256pp};

    /// Stand-in for rand's `StdRng` (xoshiro256++ here).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256pp);

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng(Xoshiro256pp::from_seed(state))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    /// Stand-in for rand's `SmallRng`. Same core as [`StdRng`] but a
    /// distinct seeding stream, so the two never accidentally correlate.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256pp);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng(Xoshiro256pp::from_seed(state ^ 0x5ead_beef_0add_ba11))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Slice shuffling (upstream `SliceRandom`, trimmed).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Everything a typical `use rand::prelude::*` expects.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1u64..=5);
            assert!((1..=5).contains(&y));
            let z = rng.gen_range(0.0f64..0.5);
            assert!((0.0..0.5).contains(&z));
            let i = rng.gen_range(0..3);
            assert!((0..3).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rough_balance() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted; seed is unlucky");
    }
}
